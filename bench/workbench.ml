(* Shared benchmark plumbing: compile each paper workload once, cache the
   result, and provide simulator harnesses for the throughput runs. *)

(* Run artifacts (traces, current-run measurements) land in an ignored
   directory instead of littering the repo root; checked-in baselines
   (BENCH_*.json at the root) stay where git tracks them. *)
let artifact name =
  let dir = "_artifacts" in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Filename.concat dir name

type workload = {
  name : string;
  source : string;
  (* paper Figure 5 row: lines, layouts, pack, unpack, raise, handle *)
  paper_fig5 : (int * int * string * string * string * string) option;
  (* paper Figure 6 row: DefL, DefLD, total, UseS, UseSD, total *)
  paper_fig6 : (int * int * int * int * int * int) option;
  (* paper Figure 7 row: root s, integer s, vars k, rows k, obj k, moves, spills *)
  paper_fig7 : (float * float * int * int * int * int * int) option;
  init_sim : Ixp.Simulator.t -> payload_len:int -> unit;
  init_interp : Cps.Interp.state -> payload_len:int -> unit;
  (* chip-level harness: payload sizes the workload accepts (block
     size), table setup into the chip's shared memory, and the
     per-packet header+payload image for a context's SDRAM buffer *)
  size_align : int;
  init_chip_tables : Ixp.Memory.t -> unit;
  write_packet : (int -> int -> unit) -> payload_len:int -> unit;
}

let poke_scratch mem w v = Ixp.Memory.poke mem Ixp.Insn.Scratch w v

let aes =
  {
    name = "AES";
    source = Workloads.Aes.source;
    paper_fig5 = Some (541, 588, "7/8", "5", "3", "1");
    paper_fig6 = Some (68, 16, 84, 4, 10, 14);
    paper_fig7 = Some (30.4, 35.9, 108, 102, 37, 25, 0);
    init_sim =
      (fun sim ~payload_len ->
        let mem = Ixp.Simulator.shared_memory sim in
        Workloads.Aes.init_tables (fun w v -> Ixp.Memory.poke mem Ixp.Insn.Sram w v);
        let sdram = Ixp.Simulator.sdram_of_thread sim ~thread:0 in
        ignore
          (Workloads.Aes.init_payload
             (fun w v -> Ixp.Memory.poke sdram Ixp.Insn.Sdram w v)
             ~payload_len));
    init_interp =
      (fun st ~payload_len ->
        let mem = Cps.Interp.memory st in
        Workloads.Aes.init_tables (fun w v -> Ixp.Memory.poke mem Ixp.Insn.Sram w v);
        ignore
          (Workloads.Aes.init_payload
             (fun w v -> Ixp.Memory.poke mem Ixp.Insn.Sdram w v)
             ~payload_len));
    size_align = 16;
    init_chip_tables =
      (fun mem ->
        Workloads.Aes.init_tables (fun w v ->
            Ixp.Memory.poke mem Ixp.Insn.Sram w v));
    write_packet =
      (fun load ~payload_len ->
        ignore (Workloads.Aes.init_payload load ~payload_len));
  }

let kasumi =
  {
    name = "Kasumi";
    source = Workloads.Kasumi.source;
    paper_fig5 = Some (587, 538, "7/7", "4", "2", "2");
    paper_fig6 = Some (44, 14, 58, 4, 14, 18);
    paper_fig7 = Some (48.2, 59.2, 138, 131, 50, 20, 0);
    init_sim =
      (fun sim ~payload_len ->
        let mem = Ixp.Simulator.shared_memory sim in
        Workloads.Kasumi.init_tables
          ~load_sram:(fun w v -> Ixp.Memory.poke mem Ixp.Insn.Sram w v)
          ~load_scratch:(fun w v -> poke_scratch mem w v);
        let sdram = Ixp.Simulator.sdram_of_thread sim ~thread:0 in
        ignore
          (Workloads.Kasumi.init_payload
             (fun w v -> Ixp.Memory.poke sdram Ixp.Insn.Sdram w v)
             ~payload_len));
    init_interp =
      (fun st ~payload_len ->
        let mem = Cps.Interp.memory st in
        Workloads.Kasumi.init_tables
          ~load_sram:(fun w v -> Ixp.Memory.poke mem Ixp.Insn.Sram w v)
          ~load_scratch:(fun w v -> poke_scratch mem w v);
        ignore
          (Workloads.Kasumi.init_payload
             (fun w v -> Ixp.Memory.poke mem Ixp.Insn.Sdram w v)
             ~payload_len));
    size_align = 8;
    init_chip_tables =
      (fun mem ->
        Workloads.Kasumi.init_tables
          ~load_sram:(fun w v -> Ixp.Memory.poke mem Ixp.Insn.Sram w v)
          ~load_scratch:(fun w v -> poke_scratch mem w v));
    write_packet =
      (fun load ~payload_len ->
        ignore (Workloads.Kasumi.init_payload load ~payload_len));
  }

let nat =
  {
    name = "NAT";
    source = Workloads.Nat.source;
    paper_fig5 = Some (839, 740, "-", "-", "-", "-");
    paper_fig6 = Some (43, 22, 65, 8, 60, 64);
    paper_fig7 = Some (69.2, 155.6, 208, 203, 72, 60, 0);
    init_sim =
      (fun sim ~payload_len ->
        let mem = Ixp.Simulator.shared_memory sim in
        Workloads.Nat.init_tables (fun w v -> Ixp.Memory.poke mem Ixp.Insn.Sram w v);
        let sdram = Ixp.Simulator.sdram_of_thread sim ~thread:0 in
        ignore
          (Workloads.Nat.init_payload
             (fun w v -> Ixp.Memory.poke sdram Ixp.Insn.Sdram w v)
             ~payload_len));
    init_interp =
      (fun st ~payload_len ->
        let mem = Cps.Interp.memory st in
        Workloads.Nat.init_tables (fun w v -> Ixp.Memory.poke mem Ixp.Insn.Sram w v);
        ignore
          (Workloads.Nat.init_payload
             (fun w v -> Ixp.Memory.poke mem Ixp.Insn.Sdram w v)
             ~payload_len));
    size_align = 4;
    init_chip_tables =
      (fun mem ->
        Workloads.Nat.init_tables (fun w v ->
            Ixp.Memory.poke mem Ixp.Insn.Sram w v));
    write_packet =
      (fun load ~payload_len ->
        ignore (Workloads.Nat.init_payload load ~payload_len));
  }

(* The dataplane portfolio workloads (LPM, firewall, csum, QoS) all share
   the NAT-shaped init interface: one SRAM table loader and one SDRAM
   packet writer.  No paper figures — they are ours, not the paper's. *)
let dataplane name source ~size_align ~init_tables ~init_payload =
  {
    name;
    source;
    paper_fig5 = None;
    paper_fig6 = None;
    paper_fig7 = None;
    init_sim =
      (fun sim ~payload_len ->
        let mem = Ixp.Simulator.shared_memory sim in
        init_tables (fun w v -> Ixp.Memory.poke mem Ixp.Insn.Sram w v);
        let sdram = Ixp.Simulator.sdram_of_thread sim ~thread:0 in
        ignore
          (init_payload
             (fun w v -> Ixp.Memory.poke sdram Ixp.Insn.Sdram w v)
             ~payload_len));
    init_interp =
      (fun st ~payload_len ->
        let mem = Cps.Interp.memory st in
        init_tables (fun w v -> Ixp.Memory.poke mem Ixp.Insn.Sram w v);
        ignore
          (init_payload
             (fun w v -> Ixp.Memory.poke mem Ixp.Insn.Sdram w v)
             ~payload_len));
    size_align;
    init_chip_tables =
      (fun mem ->
        init_tables (fun w v -> Ixp.Memory.poke mem Ixp.Insn.Sram w v));
    write_packet =
      (fun load ~payload_len -> ignore (init_payload load ~payload_len));
  }

let lpm =
  dataplane "LPM" Workloads.Lpm.source ~size_align:4
    ~init_tables:Workloads.Lpm.init_tables
    ~init_payload:Workloads.Lpm.init_payload

let firewall =
  dataplane "Firewall" Workloads.Firewall.source ~size_align:4
    ~init_tables:Workloads.Firewall.init_tables
    ~init_payload:Workloads.Firewall.init_payload

let csum =
  dataplane "Csum" Workloads.Csum.source ~size_align:8
    ~init_tables:Workloads.Csum.init_tables
    ~init_payload:Workloads.Csum.init_payload

let qos =
  dataplane "QoS" Workloads.Qos.source ~size_align:4
    ~init_tables:Workloads.Qos.init_tables
    ~init_payload:Workloads.Qos.init_payload

let all = [ aes; kasumi; nat; lpm; firewall; csum; qos ]

(* Compilation cache: each workload is compiled at most once per mode. *)
let cache : (string, Regalloc.Driver.compiled) Hashtbl.t = Hashtbl.create 8

let compile ?(allocator = Regalloc.Driver.Ilp_allocator)
    ?(objective = Regalloc.Ilp.Minimize_moves) ?(time_limit = 900.)
    ?(node_limit = Regalloc.Driver.default_options.Regalloc.Driver.node_limit)
    (w : workload) =
  let key =
    Printf.sprintf "%s/%s/%s/%.0f/%d" w.name
      (match allocator with
      | Regalloc.Driver.Ilp_allocator -> "ilp"
      | Regalloc.Driver.Baseline_allocator -> "base")
      (match objective with
      | Regalloc.Ilp.Minimize_moves -> "moves"
      | Regalloc.Ilp.Spill_feasibility -> "spill")
      time_limit node_limit
  in
  match Hashtbl.find_opt cache key with
  | Some c -> c
  | None ->
      let options =
        {
          Regalloc.Driver.default_options with
          allocator;
          objective;
          time_limit;
          node_limit;
        }
      in
      let c =
        Regalloc.Driver.compile ~options ~file:(w.name ^ ".nova") w.source
      in
      Hashtbl.replace cache key c;
      c

(* Packets are delivered by writing the workload's header+payload image
   into the receiving context's SDRAM buffer (the kernels read the
   packet from SDRAM, not the RFIFO). *)
let workload_deliver (w : workload) : Ixp.Chip.deliver =
 fun chip ~engine ~thread ~seq:_ ~size ~words:_ ~payload:_ ->
  let sim = Ixp.Chip.engine chip engine in
  let sd = Ixp.Simulator.sdram_of_thread sim ~thread in
  let payload_len = max w.size_align (size / w.size_align * w.size_align) in
  w.write_packet
    (fun word v -> Ixp.Memory.poke sd Ixp.Insn.Sdram word v)
    ~payload_len

(* Chip-level forwarding-rate run: instantiate the chip on the compiled
   program, load the workload's tables into the shared memory, and drive
   it from the packet generator. *)
let chip_run (w : workload) (c : Regalloc.Driver.compiled) ~engines ~threads
    ~offered ~packets ~seed ~profile =
  let config =
    { Ixp.Chip.default_config with Ixp.Chip.engines; threads }
  in
  let chip = Ixp.Chip.create ~config c.Regalloc.Driver.physical in
  w.init_chip_tables (Ixp.Chip.shared_memory chip);
  let gen =
    Ixp.Pktgen.create
      {
        Ixp.Pktgen.default_config with
        Ixp.Pktgen.profile;
        offered_mpps = offered;
        seed;
        count = packets;
        size_align = w.size_align;
      }
  in
  Ixp.Chip.run ~deliver:(workload_deliver w) chip gen

(* Cluster-level forwarding-rate run: [chips] chip models behind the
   load balancer, each loaded with the workload's tables. *)
let cluster_run (w : workload) (c : Regalloc.Driver.compiled) ~chips ~balancer
    ~engines ~threads ~offered ~packets ~seed ~profile ~drop_budget =
  let chip_config =
    { Ixp.Chip.default_config with Ixp.Chip.engines; threads }
  in
  let config =
    {
      Cluster.default_config with
      Cluster.chips;
      balancer;
      chip_config;
      drop_budget;
    }
  in
  let cl = Cluster.create ~config c.Regalloc.Driver.physical in
  Cluster.iter_chips
    (fun chip -> w.init_chip_tables (Ixp.Chip.shared_memory chip))
    cl;
  let gen =
    Ixp.Pktgen.create
      {
        Ixp.Pktgen.default_config with
        Ixp.Pktgen.profile;
        offered_mpps = offered;
        seed;
        count = packets;
        size_align = w.size_align;
      }
  in
  Cluster.run ~deliver:(workload_deliver w) cl gen

let front_cache : (string, Regalloc.Driver.front) Hashtbl.t = Hashtbl.create 8

let front (w : workload) =
  match Hashtbl.find_opt front_cache w.name with
  | Some f -> f
  | None ->
      let f = Regalloc.Driver.front_end ~file:(w.name ^ ".nova") w.source in
      Hashtbl.replace front_cache w.name f;
      f
