(* Continuation-passing-style intermediate representation (paper §4).

   Properties the back end relies on:
     - every variable corresponds to a single machine register (aggregates
       were flattened during conversion);
     - static single assignment holds by construction (all binders are
       fresh), which §9 of the paper needs for consistent colorings of
       memory-read targets;
     - after the static-single-use pass, every memory-write operand has a
       single use in the whole program;
     - control is expressed with [Fix]-bound functions and tail
       applications only; source functions ([Func]) are eliminated by
       de-proceduralization, leaving continuations ([Cont]) that map 1-1
       to basic blocks. *)

open Support

type var = Ident.t

type value = Var of var | Int of int

type prim =
  | Add | Sub | Mul | And | Or | Xor | Shl | Shr | Asr
  | Not | Neg | Mov

type cmp = Eq | Ne | Lt | Le | Gt | Ge | Ult | Uge

type space = Nova.Ast.mem_space

type kind =
  | Func (* source-level function: gets a return continuation parameter *)
  | Cont (* continuation introduced by conversion: join, loop, handler *)

type term =
  | Prim of var * prim * value list * term
  | MemRead of space * value * var array * term (* addr, destinations *)
  | MemWrite of space * value * value array * term
  | Hash of var * value * term
  | BitTestSet of var * value * value * term (* dst, addr, operand *)
  | CsrRead of var * string * term
  | CsrWrite of string * value * term
  | RfifoRead of value * var array * term
  | TfifoWrite of value * value array * term
  | CtxArb of term
  | Clone of var array * var * term (* SSU pseudo-op *)
  | Branch of cmp * value * value * term * term
  | App of value * value list (* tail application / jump *)
  | Fix of fundef list * term
  | Halt of value list (* program end; values are the observable result *)

and fundef = { name : var; params : var list; kind : kind; body : term }

(* ------------------------------------------------------------------ *)
(* Traversals                                                          *)
(* ------------------------------------------------------------------ *)

let value_vars = function Var v -> [ v ] | Int _ -> []

let rec iter_terms f (t : term) =
  f t;
  match t with
  | Prim (_, _, _, k)
  | MemRead (_, _, _, k)
  | MemWrite (_, _, _, k)
  | Hash (_, _, k)
  | BitTestSet (_, _, _, k)
  | CsrRead (_, _, k)
  | CsrWrite (_, _, k)
  | RfifoRead (_, _, k)
  | TfifoWrite (_, _, k)
  | CtxArb k
  | Clone (_, _, k) ->
      iter_terms f k
  | Branch (_, _, _, a, b) ->
      iter_terms f a;
      iter_terms f b
  | Fix (defs, k) ->
      List.iter (fun d -> iter_terms f d.body) defs;
      iter_terms f k
  | App _ | Halt _ -> ()

(* Free variables of a term (function names bound by Fix are variables
   too). *)
let free_vars (t : term) : Ident.Set.t =
  let module S = Ident.Set in
  let rec go bound t acc =
    let value acc v = match v with Var x when not (S.mem x bound) -> S.add x acc | _ -> acc in
    let values acc vs = List.fold_left value acc vs in
    match t with
    | Prim (x, _, vs, k) -> go (S.add x bound) k (values acc vs)
    | MemRead (_, a, dsts, k) ->
        go (Array.fold_left (fun b d -> S.add d b) bound dsts) k (value acc a)
    | MemWrite (_, a, vs, k) ->
        go bound k (values (value acc a) (Array.to_list vs))
    | Hash (x, v, k) -> go (S.add x bound) k (value acc v)
    | BitTestSet (x, a, v, k) -> go (S.add x bound) k (value (value acc a) v)
    | CsrRead (x, _, k) -> go (S.add x bound) k acc
    | CsrWrite (_, v, k) -> go bound k (value acc v)
    | RfifoRead (a, dsts, k) ->
        go (Array.fold_left (fun b d -> S.add d b) bound dsts) k (value acc a)
    | TfifoWrite (a, vs, k) ->
        go bound k (values (value acc a) (Array.to_list vs))
    | CtxArb k -> go bound k acc
    | Clone (dsts, src, k) ->
        let acc = if S.mem src bound then acc else S.add src acc in
        go (Array.fold_left (fun b d -> S.add d b) bound dsts) k acc
    | Branch (_, a, b, t1, t2) ->
        let acc = value (value acc a) b in
        go bound t2 (go bound t1 acc)
    | App (f, vs) -> values (value acc f) vs
    | Halt vs -> values acc vs
    | Fix (defs, k) ->
        let bound' =
          List.fold_left (fun b d -> S.add d.name b) bound defs
        in
        let acc =
          List.fold_left
            (fun acc d ->
              go
                (List.fold_left (fun b p -> S.add p b) bound' d.params)
                d.body acc)
            acc defs
        in
        go bound' k acc
  in
  go S.empty t S.empty

(* ------------------------------------------------------------------ *)
(* Substitution and renaming                                           *)
(* ------------------------------------------------------------------ *)

(* Capture-avoiding value substitution: replaces *uses* of variables
   according to [subst]; binders are untouched (SSA guarantees no binder
   is ever in [subst]'s domain when used correctly). *)
let rec substitute (subst : value Ident.Map.t) (t : term) : term =
  let sv v =
    match v with
    | Var x -> ( match Ident.Map.find_opt x subst with Some v' -> v' | None -> v)
    | Int _ -> v
  in
  let svs = List.map sv in
  let sva = Array.map sv in
  match t with
  | Prim (x, p, vs, k) -> Prim (x, p, svs vs, substitute subst k)
  | MemRead (sp, a, dsts, k) -> MemRead (sp, sv a, dsts, substitute subst k)
  | MemWrite (sp, a, vs, k) -> MemWrite (sp, sv a, sva vs, substitute subst k)
  | Hash (x, v, k) -> Hash (x, sv v, substitute subst k)
  | BitTestSet (x, a, v, k) -> BitTestSet (x, sv a, sv v, substitute subst k)
  | CsrRead (x, c, k) -> CsrRead (x, c, substitute subst k)
  | CsrWrite (c, v, k) -> CsrWrite (c, sv v, substitute subst k)
  | RfifoRead (a, dsts, k) -> RfifoRead (sv a, dsts, substitute subst k)
  | TfifoWrite (a, vs, k) -> TfifoWrite (sv a, sva vs, substitute subst k)
  | CtxArb k -> CtxArb (substitute subst k)
  | Clone (dsts, src, k) ->
      let src' =
        match sv (Var src) with
        | Var s -> s
        | Int _ ->
            (* cloning a constant: keep the original variable; constant
               propagation will have replaced the uses anyway *)
            src
      in
      Clone (dsts, src', substitute subst k)
  | Branch (c, a, b, t1, t2) ->
      Branch (c, sv a, sv b, substitute subst t1, substitute subst t2)
  | App (f, vs) -> App (sv f, svs vs)
  | Halt vs -> Halt (svs vs)
  | Fix (defs, k) ->
      Fix
        ( List.map (fun d -> { d with body = substitute subst d.body }) defs,
          substitute subst k )

(* Alpha-rename every binder in a term (used when inlining duplicates a
   function body). *)
let rec alpha_rename (ren : var Ident.Map.t) (t : term) : term =
  let rv x = match Ident.Map.find_opt x ren with Some y -> y | None -> x in
  let sv = function Var x -> Var (rv x) | Int i -> Int i in
  let svs = List.map sv in
  let sva = Array.map sv in
  let fresh_var ren x =
    let y = Ident.clone x in
    (Ident.Map.add x y ren, y)
  in
  let fresh_vars ren xs =
    List.fold_left_map (fun ren x -> fresh_var ren x) ren xs
  in
  match t with
  | Prim (x, p, vs, k) ->
      let vs = svs vs in
      let ren, x' = fresh_var ren x in
      Prim (x', p, vs, alpha_rename ren k)
  | MemRead (sp, a, dsts, k) ->
      let a = sv a in
      let ren, dsts' = fresh_vars ren (Array.to_list dsts) in
      MemRead (sp, a, Array.of_list dsts', alpha_rename ren k)
  | MemWrite (sp, a, vs, k) -> MemWrite (sp, sv a, sva vs, alpha_rename ren k)
  | Hash (x, v, k) ->
      let v = sv v in
      let ren, x' = fresh_var ren x in
      Hash (x', v, alpha_rename ren k)
  | BitTestSet (x, a, v, k) ->
      let a = sv a and v = sv v in
      let ren, x' = fresh_var ren x in
      BitTestSet (x', a, v, alpha_rename ren k)
  | CsrRead (x, c, k) ->
      let ren, x' = fresh_var ren x in
      CsrRead (x', c, alpha_rename ren k)
  | CsrWrite (c, v, k) -> CsrWrite (c, sv v, alpha_rename ren k)
  | RfifoRead (a, dsts, k) ->
      let a = sv a in
      let ren, dsts' = fresh_vars ren (Array.to_list dsts) in
      RfifoRead (a, Array.of_list dsts', alpha_rename ren k)
  | TfifoWrite (a, vs, k) -> TfifoWrite (sv a, sva vs, alpha_rename ren k)
  | CtxArb k -> CtxArb (alpha_rename ren k)
  | Clone (dsts, src, k) ->
      let src = rv src in
      let ren, dsts' = fresh_vars ren (Array.to_list dsts) in
      Clone (Array.of_list dsts', src, alpha_rename ren k)
  | Branch (c, a, b, t1, t2) ->
      Branch (c, sv a, sv b, alpha_rename ren t1, alpha_rename ren t2)
  | App (f, vs) -> App (sv f, svs vs)
  | Halt vs -> Halt (svs vs)
  | Fix (defs, k) ->
      let ren, _ = fresh_vars ren (List.map (fun d -> d.name) defs) in
      let defs' =
        List.map
          (fun d ->
            let ren, params' = fresh_vars ren d.params in
            { name = rv' ren d.name; params = params'; kind = d.kind;
              body = alpha_rename ren d.body })
          defs
      in
      Fix (defs', alpha_rename ren k)

and rv' ren x = match Ident.Map.find_opt x ren with Some y -> y | None -> x

(* ------------------------------------------------------------------ *)
(* Size and printing                                                   *)
(* ------------------------------------------------------------------ *)

let rec size = function
  | Prim (_, _, _, k) | Hash (_, _, k) | BitTestSet (_, _, _, k)
  | CsrRead (_, _, k) | CsrWrite (_, _, k) | CtxArb k | Clone (_, _, k)
  | MemRead (_, _, _, k) | MemWrite (_, _, _, k) | RfifoRead (_, _, k)
  | TfifoWrite (_, _, k) ->
      1 + size k
  | Branch (_, _, _, a, b) -> 1 + size a + size b
  | App _ | Halt _ -> 1
  | Fix (defs, k) ->
      List.fold_left (fun acc d -> acc + size d.body) (size k) defs

let prim_to_string = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | And -> "and" | Or -> "or"
  | Xor -> "xor" | Shl -> "shl" | Shr -> "shr" | Asr -> "asr"
  | Not -> "not" | Neg -> "neg" | Mov -> "mov"

let cmp_to_string = function
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Ult -> "<u" | Uge -> ">=u"

let pp_value ppf = function
  | Var v -> Ident.pp ppf v
  | Int i -> Fmt.int ppf i

let rec pp ppf (t : term) =
  let pv = pp_value in
  match t with
  | Prim (x, p, vs, k) ->
      Fmt.pf ppf "@[<h>%a = %s(%a)@]@.%a" Ident.pp x (prim_to_string p)
        Fmt.(list ~sep:comma pv) vs pp k
  | MemRead (sp, a, dsts, k) ->
      Fmt.pf ppf "@[<h>(%a) = %s[%a]@]@.%a"
        Fmt.(array ~sep:comma Ident.pp) dsts
        (Nova.Ast.mem_space_to_string sp) pv a pp k
  | MemWrite (sp, a, vs, k) ->
      Fmt.pf ppf "@[<h>%s[%a] <- (%a)@]@.%a"
        (Nova.Ast.mem_space_to_string sp) pv a
        Fmt.(array ~sep:comma pv) vs pp k
  | Hash (x, v, k) -> Fmt.pf ppf "@[<h>%a = hash(%a)@]@.%a" Ident.pp x pv v pp k
  | BitTestSet (x, a, v, k) ->
      Fmt.pf ppf "@[<h>%a = bit_test_set(%a, %a)@]@.%a" Ident.pp x pv a pv v pp k
  | CsrRead (x, c, k) -> Fmt.pf ppf "@[<h>%a = csr[%s]@]@.%a" Ident.pp x c pp k
  | CsrWrite (c, v, k) -> Fmt.pf ppf "@[<h>csr[%s] <- %a@]@.%a" c pv v pp k
  | RfifoRead (a, dsts, k) ->
      Fmt.pf ppf "@[<h>(%a) = rfifo[%a]@]@.%a"
        Fmt.(array ~sep:comma Ident.pp) dsts pv a pp k
  | TfifoWrite (a, vs, k) ->
      Fmt.pf ppf "@[<h>tfifo[%a] <- (%a)@]@.%a" pv a
        Fmt.(array ~sep:comma pv) vs pp k
  | CtxArb k -> Fmt.pf ppf "ctx_arb@.%a" pp k
  | Clone (dsts, src, k) ->
      Fmt.pf ppf "@[<h>(%a) = clone(%a)@]@.%a"
        Fmt.(array ~sep:comma Ident.pp) dsts Ident.pp src pp k
  | Branch (c, a, b, t1, t2) ->
      Fmt.pf ppf "@[<v>if %a %s %a then {@;<0 2>@[<v>%a@]@,} else {@;<0 2>@[<v>%a@]@,}@]"
        pv a (cmp_to_string c) pv b pp t1 pp t2
  | App (f, vs) -> Fmt.pf ppf "@[<h>%a(%a)@]" pv f Fmt.(list ~sep:comma pv) vs
  | Halt vs -> Fmt.pf ppf "@[<h>halt(%a)@]" Fmt.(list ~sep:comma pv) vs
  | Fix (defs, k) ->
      List.iter
        (fun d ->
          Fmt.pf ppf "@[<v>%s %a(%a) {@;<0 2>@[<v>%a@]@,}@]@."
            (match d.kind with Func -> "fun" | Cont -> "cont")
            Ident.pp d.name
            Fmt.(list ~sep:comma Ident.pp)
            d.params pp d.body)
        defs;
      pp ppf k

let to_string t = Fmt.str "%a" pp t

(* ------------------------------------------------------------------ *)
(* SSA validation                                                      *)
(* ------------------------------------------------------------------ *)

(* Every binder must be distinct program-wide. *)
let check_ssa (t : term) : (unit, string) result =
  let seen = Ident.Tbl.create 256 in
  let dup = ref None in
  let bind x =
    if Ident.Tbl.mem seen x then dup := Some x else Ident.Tbl.add seen x ()
  in
  let rec go t =
    match t with
    | Prim (x, _, _, k) | Hash (x, _, k) | BitTestSet (x, _, _, k)
    | CsrRead (x, _, k) ->
        bind x;
        go k
    | MemRead (_, _, dsts, k) | RfifoRead (_, dsts, k) ->
        Array.iter bind dsts;
        go k
    | Clone (dsts, _, k) ->
        Array.iter bind dsts;
        go k
    | MemWrite (_, _, _, k) | TfifoWrite (_, _, k) | CsrWrite (_, _, k)
    | CtxArb k ->
        go k
    | Branch (_, _, _, a, b) ->
        go a;
        go b
    | App _ | Halt _ -> ()
    | Fix (defs, k) ->
        List.iter
          (fun d ->
            bind d.name;
            List.iter bind d.params;
            go d.body)
          defs;
        go k
  in
  go t;
  match !dup with
  | None -> Ok ()
  | Some x -> Error (Fmt.str "duplicate binder %a" Ident.pp x)
