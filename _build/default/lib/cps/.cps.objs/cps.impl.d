lib/cps/cps.ml: Contract Convert Deproc Interp Ir Isel Ssu
