lib/cps/deproc.ml: Contract Diag Ident Ir List Support
