lib/cps/ssu.ml: Array Ident Ir List Option Support
