lib/cps/isel.ml: Array Fmt Hashtbl Ident Ir Ixp List Nova Option Support Vec
