lib/cps/convert.ml: Array Diag Fmt Hashtbl Ident Ir List Nova String Support
