lib/cps/ir.ml: Array Fmt Ident List Nova Support
