lib/cps/contract.ml: Array Diag Ident Ir Lazy List Nova Option Support
