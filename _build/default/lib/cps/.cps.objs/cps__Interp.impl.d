lib/cps/interp.ml: Array Contract Fmt Ident Ir Ixp Lazy List Nova Support Vec
