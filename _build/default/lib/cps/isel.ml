(* Instruction selection: first-order CPS -> IXP flowgraph over virtual
   registers (the input to the ILP register allocator).

   Preconditions (established by deproc + contract):
     - every application's head is a Fix-bound name (no indirect jumps);
     - no Func-kind definitions remain except specialized recursion
       groups, which behave like continuations.

   Every fundef becomes a basic block; applications become jumps preceded
   by a parallel-move sequence that transfers arguments into the callee's
   parameter variables.  [Halt vs] writes the observable results to a
   reserved scratch area (so tests can compare against the CPS
   interpreter) and halts. *)

open Support
open Ir

(* Result area: high scratch words, below the spill area. *)
let result_words = 16
let result_addr_bytes config =
  4 * (config.Ixp.Memory.scratch_words - 64 - result_words)

exception Isel_error of string

let error fmt = Fmt.kstr (fun s -> raise (Isel_error s)) fmt

let cond_of_cmp : cmp -> Ixp.Insn.cond = function
  | Eq -> Ixp.Insn.Eq
  | Ne -> Ixp.Insn.Ne
  | Lt -> Ixp.Insn.Lt
  | Le -> Ixp.Insn.Le
  | Gt -> Ixp.Insn.Gt
  | Ge -> Ixp.Insn.Ge
  | Ult -> Ixp.Insn.Ultl
  | Uge -> Ixp.Insn.Uge

let alu_of_prim : prim -> Ixp.Insn.alu_op = function
  | Add -> Ixp.Insn.Add
  | Sub -> Ixp.Insn.Sub
  | Mul -> Ixp.Insn.Mullo
  | And -> Ixp.Insn.And
  | Or -> Ixp.Insn.Or
  | Xor -> Ixp.Insn.Xor
  | Shl -> Ixp.Insn.Shl
  | Shr -> Ixp.Insn.Shr
  | Asr -> Ixp.Insn.Asr
  | Not | Neg | Mov -> Support.Diag.ice "alu_of_prim: unary"

let space_to_ixp : Nova.Ast.mem_space -> Ixp.Insn.space = function
  | Nova.Ast.Sram -> Ixp.Insn.Sram
  | Nova.Ast.Sdram -> Ixp.Insn.Sdram
  | Nova.Ast.Scratch -> Ixp.Insn.Scratch

(* IXP immediates are small; larger constants are materialized. *)
let fits_immediate i = i >= 0 && i < 256

type st = {
  graph_blocks : (string * Ident.t Ixp.Insn.t list * Ident.t Ixp.Insn.terminator) Vec.t;
  params_of : var list Ident.Tbl.t; (* fundef name -> params *)
  mutable pending : (string * var list * term) list; (* blocks to emit *)
  emitted : (string, unit) Hashtbl.t;
  config : Ixp.Memory.config;
}

(* Materialize a CPS value into a virtual register, emitting into [ins]. *)
let as_reg ins (v : value) : Ident.t =
  match v with
  | Var x -> x
  | Int i ->
      let t = Ident.fresh "imm" in
      Vec.push ins (Ixp.Insn.Imm { dst = t; value = i });
      t

let as_operand ins (v : value) : Ident.t Ixp.Insn.operand =
  match v with
  | Var x -> Ixp.Insn.Reg x
  | Int i when fits_immediate i -> Ixp.Insn.Lit i
  | Int i ->
      let t = Ident.fresh "imm" in
      Vec.push ins (Ixp.Insn.Imm { dst = t; value = i });
      Ixp.Insn.Reg t

let as_addr _ins (v : value) : Ident.t Ixp.Insn.addr =
  match v with
  | Var x -> { Ixp.Insn.base = Ixp.Insn.Reg x; disp = 0 }
  | Int i -> { Ixp.Insn.base = Ixp.Insn.Lit i; disp = 0 }

(* ------------------------------------------------------------------ *)
(* Parallel moves                                                      *)
(* ------------------------------------------------------------------ *)

(* Emit moves [dst_i := src_i] that are executed "simultaneously":
   classic algorithm; cycles are broken with a fresh temporary. *)
let emit_parallel_moves ins (pairs : (var * value) list) =
  (* drop identities *)
  let pairs =
    List.filter (fun (d, s) -> match s with Var x -> not (Ident.equal d x) | Int _ -> true) pairs
  in
  (* constants last: they have no read dependencies *)
  let consts, moves =
    List.partition (fun (_, s) -> match s with Int _ -> true | Var _ -> false) pairs
  in
  (* moves: dst <- src(var) *)
  let remaining =
    ref
      (List.map
         (fun (d, s) -> (d, match s with Var x -> x | _ -> assert false))
         moves)
  in
  let is_pending_src x = List.exists (fun (_, s) -> Ident.equal s x) !remaining in
  while !remaining <> [] do
    let ready, blocked =
      List.partition (fun (d, _) -> not (is_pending_src d)) !remaining
    in
    if ready <> [] then begin
      List.iter
        (fun (d, s) -> Vec.push ins (Ixp.Insn.Alu1 { dst = d; op = `Mov; src = s }))
        ready;
      remaining := blocked
    end
    else begin
      (* every destination is also a pending source: a cycle.  Save one
         destination's old value to a temporary, emit its move, and
         redirect readers of the old value to the temporary. *)
      match !remaining with
      | [] -> ()
      | (d, s) :: rest ->
          let tmp = Ident.fresh "cyc" in
          Vec.push ins (Ixp.Insn.Alu1 { dst = tmp; op = `Mov; src = d });
          Vec.push ins (Ixp.Insn.Alu1 { dst = d; op = `Mov; src = s });
          remaining :=
            List.map
              (fun (d', s') -> if Ident.equal s' d then (d', tmp) else (d', s'))
              rest
    end
  done;
  List.iter
    (fun (d, s) ->
      match s with
      | Int i -> Vec.push ins (Ixp.Insn.Imm { dst = d; value = i })
      | Var _ -> assert false)
    consts

(* ------------------------------------------------------------------ *)
(* Block emission                                                      *)
(* ------------------------------------------------------------------ *)

let label_of (x : var) = Ident.name x

let rec emit_term (st : st) ins (t : term) : Ident.t Ixp.Insn.terminator =
  match t with
  | Prim (x, Mov, [ v ], k) ->
      (match v with
      | Var s -> Vec.push ins (Ixp.Insn.Alu1 { dst = x; op = `Mov; src = s })
      | Int i -> Vec.push ins (Ixp.Insn.Imm { dst = x; value = i }));
      emit_term st ins k
  | Prim (x, Not, [ v ], k) ->
      let s = as_reg ins v in
      Vec.push ins (Ixp.Insn.Alu1 { dst = x; op = `Not; src = s });
      emit_term st ins k
  | Prim (x, Neg, [ v ], k) ->
      let s = as_reg ins v in
      Vec.push ins (Ixp.Insn.Alu1 { dst = x; op = `Neg; src = s });
      emit_term st ins k
  | Prim (x, p, [ a; b ], k) ->
      let xa = as_reg ins a in
      let yb = as_operand ins b in
      (* the ALU reads its two operands from different bank groups; a
         repeated variable needs a physical copy for the second port *)
      let yb =
        match yb with
        | Ixp.Insn.Reg y when Ident.equal y xa ->
            let t = Ident.fresh "dup" in
            Vec.push ins (Ixp.Insn.Alu1 { dst = t; op = `Mov; src = y });
            Ixp.Insn.Reg t
        | _ -> yb
      in
      Vec.push ins (Ixp.Insn.Alu { dst = x; op = alu_of_prim p; x = xa; y = yb });
      emit_term st ins k
  | Prim (_, p, vs, _) ->
      error "bad primitive arity: %s/%d" (prim_to_string p) (List.length vs)
  | MemRead (sp, a, dsts, k) ->
      let addr = as_addr ins a in
      Vec.push ins
        (Ixp.Insn.Read { space = space_to_ixp sp; dsts; addr });
      emit_term st ins k
  | MemWrite (sp, a, vs, k) ->
      let addr = as_addr ins a in
      let srcs = Array.map (fun v -> as_reg ins v) vs in
      Vec.push ins (Ixp.Insn.Write { space = space_to_ixp sp; srcs; addr });
      emit_term st ins k
  | Hash (x, v, k) ->
      let s = as_reg ins v in
      Vec.push ins (Ixp.Insn.Hash { dst = x; src = s });
      emit_term st ins k
  | BitTestSet (x, a, v, k) ->
      let addr = as_addr ins a in
      let s = as_reg ins v in
      Vec.push ins (Ixp.Insn.Bit_test_set { dst = x; src = s; addr });
      emit_term st ins k
  | CsrRead (x, csr, k) ->
      Vec.push ins (Ixp.Insn.Csr_read { dst = x; csr });
      emit_term st ins k
  | CsrWrite (csr, v, k) ->
      let s = as_reg ins v in
      Vec.push ins (Ixp.Insn.Csr_write { src = s; csr });
      emit_term st ins k
  | RfifoRead (a, dsts, k) ->
      let addr = as_addr ins a in
      Vec.push ins (Ixp.Insn.Rfifo_read { dsts; addr });
      emit_term st ins k
  | TfifoWrite (a, vs, k) ->
      let addr = as_addr ins a in
      let srcs = Array.map (fun v -> as_reg ins v) vs in
      Vec.push ins (Ixp.Insn.Tfifo_write { srcs; addr });
      emit_term st ins k
  | CtxArb k ->
      Vec.push ins Ixp.Insn.Ctx_arb;
      emit_term st ins k
  | Clone (dsts, src, k) ->
      Vec.push ins (Ixp.Insn.Clone { dsts; src });
      emit_term st ins k
  | Branch (cmp, a, b, t1, t2) ->
      let x, y, cmp =
        match (a, b) with
        | Var va, Var vb when Ident.equal va vb ->
            (* compare a variable against itself: duplicate one side *)
            let t = Ident.fresh "dup" in
            Vec.push ins (Ixp.Insn.Alu1 { dst = t; op = `Mov; src = vb });
            (as_reg ins a, Ixp.Insn.Reg t, cmp)
        | Var _, _ -> (as_reg ins a, as_operand ins b, cmp)
        | Int _, Var _ ->
            (* flip so the register is on the left *)
            let flipped =
              match cmp with
              | Eq -> Eq | Ne -> Ne
              | Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le
              | Ult -> Ult | Uge -> Uge
            in
            (* careful: Ult/Uge flips to Ugt/Ule which we lack; just
               materialize instead *)
            (match cmp with
            | Ult | Uge -> (as_reg ins a, as_operand ins b, cmp)
            | _ -> (as_reg ins b, as_operand ins a, flipped))
        | Int _, Int _ -> (as_reg ins a, as_operand ins b, cmp)
      in
      let ifso = arm_label st t1 in
      let ifnot = arm_label st t2 in
      Ixp.Insn.Branch { cond = cond_of_cmp cmp; x; y; ifso; ifnot }
  | App (Var f, args) -> (
      match Ident.Tbl.find_opt st.params_of f with
      | None -> error "application of unknown function %s" (Ident.name f)
      | Some params ->
          if List.length params <> List.length args then
            error "arity mismatch jumping to %s" (Ident.name f);
          emit_parallel_moves ins (List.combine params args);
          Ixp.Insn.Jump (label_of f))
  | App (Int _, _) -> error "application of a constant"
  | Halt vs ->
      (* persist observable results to the scratch result area *)
      let addr = result_addr_bytes st.config in
      let rec chunks off = function
        | [] -> ()
        | vs ->
            let n = min 8 (List.length vs) in
            let now = List.filteri (fun i _ -> i < n) vs in
            let later = List.filteri (fun i _ -> i >= n) vs in
            let srcs = Array.of_list (List.map (fun v -> as_reg ins v) now) in
            Vec.push ins
              (Ixp.Insn.Write
                 {
                   space = Ixp.Insn.Scratch;
                   srcs;
                   addr = { Ixp.Insn.base = Ixp.Insn.Lit (addr + (4 * off)); disp = 0 };
                 });
            chunks (off + n) later
      in
      if vs <> [] then chunks 0 vs;
      Ixp.Insn.Halt
  | Fix (defs, k) ->
      List.iter
        (fun d ->
          Ident.Tbl.replace st.params_of d.name d.params;
          st.pending <- (label_of d.name, d.params, d.body) :: st.pending)
        defs;
      emit_term st ins k

(* A branch arm becomes either a direct jump target (if it is a bare
   application with no argument moves) or a fresh block. *)
and arm_label (st : st) (t : term) : string =
  match t with
  | App (Var f, args) when Ident.Tbl.mem st.params_of f ->
      let params = Ident.Tbl.find st.params_of f in
      let trivial =
        List.length params = List.length args
        && List.for_all2
             (fun p a -> match a with Var x -> Ident.equal x p | Int _ -> false)
             params args
      in
      if trivial then label_of f
      else begin
        let lbl = Ident.name (Ident.fresh "arm") in
        st.pending <- (lbl, [], t) :: st.pending;
        lbl
      end
  | _ ->
      let lbl = Ident.name (Ident.fresh "arm") in
      st.pending <- (lbl, [], t) :: st.pending;
      lbl

(* Collect every Fix definition reachable in the term up front, so that
   forward references (jumps to blocks bound in enclosing scopes) always
   resolve. *)
let collect_defs st t =
  iter_terms
    (fun t ->
      match t with
      | Fix (defs, _) ->
          List.iter (fun d -> Ident.Tbl.replace st.params_of d.name d.params) defs
      | _ -> ())
    t

(* Rematerialization support (paper §12): share one temporary per
   distinct constant value program-wide, defining them all in the entry
   block.  Under the ILP's virtual constant bank C those definitions are
   free bookkeeping; every use site lets the allocator choose between
   keeping the constant in a GPR or re-loading it. *)
let share_constants (g : Ident.t Ixp.Flowgraph.t) : Ident.t Ixp.Flowgraph.t =
  let shared : (int, Ident.t) Hashtbl.t = Hashtbl.create 16 in
  let alias : Ident.t Support.Ident.Tbl.t = Support.Ident.Tbl.create 32 in
  (* Only pure constant temporaries qualify: a destination defined by a
     single Imm and nothing else.  Block parameters initialized by the
     parallel-move lowering are also Imm destinations but have other
     definitions (the jumps from other predecessors). *)
  let def_count = Support.Ident.Tbl.create 64 in
  Ixp.Flowgraph.iter_blocks
    (fun b ->
      Array.iter
        (fun insn ->
          List.iter
            (fun d ->
              Support.Ident.Tbl.replace def_count d
                (1 + Option.value ~default:0 (Support.Ident.Tbl.find_opt def_count d)))
            (Ixp.Insn.defs insn))
        b.Ixp.Flowgraph.insns)
    g;
  Ixp.Flowgraph.iter_blocks
    (fun b ->
      Array.iter
        (fun insn ->
          match insn with
          | Ixp.Insn.Imm { dst; value }
            when Support.Ident.Tbl.find_opt def_count dst = Some 1 ->
              let rep =
                match Hashtbl.find_opt shared value with
                | Some rep -> rep
                | None ->
                    let rep = Ident.fresh (Fmt.str "const%d" (value land 0xFFFF)) in
                    Hashtbl.replace shared value rep;
                    rep
              in
              Support.Ident.Tbl.replace alias dst rep
          | _ -> ())
        b.Ixp.Flowgraph.insns)
    g;
  if Hashtbl.length shared = 0 then g
  else begin
    let rename v =
      Option.value ~default:v (Support.Ident.Tbl.find_opt alias v)
    in
    let g' = Ixp.Flowgraph.create () in
    let entry_label = (Ixp.Flowgraph.entry g).Ixp.Flowgraph.label in
    Ixp.Flowgraph.iter_blocks
      (fun b ->
        let insns =
          Array.to_list b.Ixp.Flowgraph.insns
          |> List.filter_map (fun insn ->
                 match insn with
                 | Ixp.Insn.Imm { dst; _ }
                   when Support.Ident.Tbl.mem alias dst ->
                     None (* replaced by the shared defs *)
                 | _ -> Some (Ixp.Insn.map_regs rename insn))
        in
        let insns =
          if b.Ixp.Flowgraph.label = entry_label then
            Hashtbl.fold
              (fun value rep acc ->
                Ixp.Insn.Imm { dst = rep; value } :: acc)
              shared []
            @ insns
          else insns
        in
        ignore
          (Ixp.Flowgraph.add_block g' ~label:b.Ixp.Flowgraph.label ~insns
             ~term:(Ixp.Insn.map_term rename b.Ixp.Flowgraph.term)))
      g;
    g'
  end

let run ?(config = Ixp.Memory.default_config) (t : term) : Ident.t Ixp.Flowgraph.t =
  let st =
    {
      graph_blocks = Vec.create ();
      params_of = Ident.Tbl.create 64;
      pending = [];
      emitted = Hashtbl.create 64;
      config;
    }
  in
  collect_defs st t;
  (* strip the top-level Fix structure: queue all defs, start with body *)
  let emit_one (label, _params, body) =
    if not (Hashtbl.mem st.emitted label) then begin
      Hashtbl.replace st.emitted label ();
      let ins = Vec.create () in
      let term = emit_term st ins body in
      Vec.push st.graph_blocks (label, Vec.to_list ins, term)
    end
  in
  st.pending <- [ ("entry", [], t) ];
  let rec drain () =
    match st.pending with
    | [] -> ()
    | job :: rest ->
        st.pending <- rest;
        emit_one job;
        drain ()
  in
  drain ();
  (* keep only blocks reachable from the entry *)
  let term_of = Hashtbl.create 64 in
  Vec.iter (fun (label, _, term) -> Hashtbl.replace term_of label term)
    st.graph_blocks;
  let reachable = Hashtbl.create 64 in
  let rec mark label =
    if not (Hashtbl.mem reachable label) then begin
      Hashtbl.replace reachable label ();
      match Hashtbl.find_opt term_of label with
      | Some term -> List.iter mark (Ixp.Insn.term_targets term)
      | None -> error "jump to unemitted block %s" label
    end
  in
  mark "entry";
  let graph = Ixp.Flowgraph.create () in
  Vec.iter
    (fun (label, insns, term) ->
      if Hashtbl.mem reachable label then
        ignore (Ixp.Flowgraph.add_block graph ~label ~insns ~term))
    st.graph_blocks;
  graph
