(* Reference interpreter for CPS terms.

   Shares the memory model (and hash function) with the IXP simulator via
   [Ixp.Memory], so "CPS interpreter output = simulator output on the
   compiled program" is a meaningful end-to-end correctness oracle. *)

open Support
open Ir

type value_rt =
  | VInt of int
  | VCont of fundef * env Lazy.t (* closure; lazy env ties recursive knots *)

and env = value_rt Ident.Map.t

type state = {
  mem : Ixp.Memory.t;
  mutable rfifo : int array;
  tfifo : int Vec.t;
  mutable steps : int;
  max_steps : int;
  mutable csr_cycle : int;
}

exception Interp_error of string

let error fmt = Fmt.kstr (fun s -> raise (Interp_error s)) fmt

let create ?(max_steps = 10_000_000) ?(config = Ixp.Memory.default_config) () =
  {
    mem = Ixp.Memory.create ~config ();
    rfifo = [||];
    tfifo = Vec.create ();
    steps = 0;
    max_steps;
    csr_cycle = 0;
  }

let word_mask = 0xFFFFFFFF

let lookup env x =
  match Ident.Map.find_opt x env with
  | Some v -> v
  | None -> error "unbound variable %s" (Ident.name x)

let int_of env v =
  match v with
  | Int i -> i land word_mask
  | Var x -> (
      match lookup env x with
      | VInt i -> i land word_mask
      | VCont _ -> error "expected an integer, got a continuation (%s)" (Ident.name x))

let eval_value env v =
  match v with
  | Int i -> VInt (i land word_mask)
  | Var x -> lookup env x

let eval_prim p args =
  match (p, args) with
  | Mov, [ a ] -> a
  | Not, [ a ] -> lnot a land word_mask
  | Neg, [ a ] -> -a land word_mask
  | Add, [ a; b ] -> (a + b) land word_mask
  | Sub, [ a; b ] -> (a - b) land word_mask
  | Mul, [ a; b ] -> a * b land word_mask
  | And, [ a; b ] -> a land b
  | Or, [ a; b ] -> a lor b
  | Xor, [ a; b ] -> a lxor b
  | Shl, [ a; b ] ->
      if b land 31 = 0 && b <> 0 then 0 else (a lsl (b land 31)) land word_mask
  | Shr, [ a; b ] -> if b >= 32 then 0 else a lsr (b land 31)
  | Asr, [ a; b ] ->
      let sa = if a land 0x80000000 <> 0 then a - 0x100000000 else a in
      sa asr min 31 (b land 255) land word_mask
  | _ -> error "bad primitive application"

let rec run (st : state) (env : env) (t : term) : int list =
  st.steps <- st.steps + 1;
  if st.steps > st.max_steps then error "step limit exceeded";
  match t with
  | Prim (x, p, vs, k) ->
      let args = List.map (int_of env) vs in
      run st (Ident.Map.add x (VInt (eval_prim p args)) env) k
  | MemRead (sp, a, dsts, k) ->
      let addr = int_of env a in
      let values =
        Ixp.Memory.read st.mem (space_to_ixp sp) addr ~count:(Array.length dsts)
      in
      let env =
        Array.to_list dsts
        |> List.mapi (fun i d -> (d, values.(i)))
        |> List.fold_left (fun env (d, v) -> Ident.Map.add d (VInt v) env) env
      in
      run st env k
  | MemWrite (sp, a, vs, k) ->
      let addr = int_of env a in
      Ixp.Memory.write st.mem (space_to_ixp sp) addr
        (Array.map (int_of env) vs);
      run st env k
  | Hash (x, v, k) ->
      run st (Ident.Map.add x (VInt (Ixp.Memory.hash (int_of env v))) env) k
  | BitTestSet (x, a, v, k) ->
      let old = Ixp.Memory.bit_test_set st.mem (int_of env a) (int_of env v) in
      run st (Ident.Map.add x (VInt old) env) k
  | CsrRead (x, csr, k) ->
      let v =
        match csr with
        | "ctx" -> 0
        | "cycle" ->
            st.csr_cycle <- st.csr_cycle + 1;
            st.csr_cycle
        | _ -> 0
      in
      run st (Ident.Map.add x (VInt v) env) k
  | CsrWrite (_, _, k) -> run st env k
  | RfifoRead (a, dsts, k) ->
      let base = int_of env a / 4 in
      let env =
        Array.to_list dsts
        |> List.mapi (fun i d ->
               let idx = base + i in
               (d, if idx < Array.length st.rfifo then st.rfifo.(idx) else 0))
        |> List.fold_left (fun env (d, v) -> Ident.Map.add d (VInt v) env) env
      in
      run st env k
  | TfifoWrite (a, vs, k) ->
      ignore (int_of env a);
      Array.iter (fun v -> Vec.push st.tfifo (int_of env v)) vs;
      run st env k
  | CtxArb k -> run st env k
  | Clone (dsts, src, k) ->
      let v = lookup env src in
      run st (Array.fold_left (fun env d -> Ident.Map.add d v env) env dsts) k
  | Branch (cmp, a, b, t1, t2) ->
      if Contract.eval_cmp cmp (int_of env a) (int_of env b) then run st env t1
      else run st env t2
  | App (f, args) -> (
      match eval_value env f with
      | VCont (d, defenv) ->
          if List.length args <> List.length d.params then
            error "arity mismatch calling %s (%d args, %d params)"
              (Ident.name d.name) (List.length args) (List.length d.params);
          let env' =
            List.fold_left2
              (fun e p a -> Ident.Map.add p (eval_value env a) e)
              (Lazy.force defenv) d.params args
          in
          run st env' d.body
      | VInt _ -> error "application of a non-function")
  | Halt vs -> List.map (int_of env) vs
  | Fix (defs, k) ->
      (* mutual recursion: tie the knot through a lazy environment *)
      let rec final =
        lazy
          (List.fold_left
             (fun e d -> Ident.Map.add d.name (VCont (d, final)) e)
             env defs)
      in
      run st (Lazy.force final) k

and space_to_ixp : Nova.Ast.mem_space -> Ixp.Insn.space = function
  | Nova.Ast.Sram -> Ixp.Insn.Sram
  | Nova.Ast.Sdram -> Ixp.Insn.Sdram
  | Nova.Ast.Scratch -> Ixp.Insn.Scratch

(* Convenience entry point. *)
let run_term ?max_steps ?config ?(rfifo = [||]) (t : term) =
  let st = create ?max_steps ?config () in
  st.rfifo <- rfifo;
  let result = run st Ident.Map.empty t in
  (result, st)

let tfifo_contents st = Vec.to_array st.tfifo
let memory st = st.mem
