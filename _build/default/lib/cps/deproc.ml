(* De-proceduralization (paper §4.3): fully inline every procedure call
   in non-tail position.

   In CPS, a "procedure call" is an application of a [Func]-kind
   definition.  Calls to non-recursive functions are inlined by copying
   the body (alpha-renamed); a call to a function in a recursive group
   instantiates a fresh copy of the whole group at the call site, so each
   copy ends up with a single entry and invariant continuation argument,
   which [Contract] then resolves.  Recursion inside a copy stays as tail
   calls (the type checker guaranteed tail position), which instruction
   selection turns into loops. *)

open Support
open Ir

(* Map from function name to (its def, its recursion group).  The group
   is the list of defs bound in the same Fix that are mutually reachable;
   we approximate with: all defs of the Fix whose bodies reference each
   other -- the cheap and safe choice is the whole Fix group filtered to
   those reachable from the called function. *)

let build_func_table (t : term) =
  let tbl = Ident.Tbl.create 32 in
  let rec go t =
    match t with
    | Fix (defs, k) ->
        let funcs = List.filter (fun d -> d.kind = Func) defs in
        List.iter (fun d -> Ident.Tbl.replace tbl d.name (d, funcs)) funcs;
        List.iter (fun d -> go d.body) defs;
        go k
    | Branch (_, _, _, a, b) ->
        go a;
        go b
    | Prim (_, _, _, k) | MemRead (_, _, _, k) | MemWrite (_, _, _, k)
    | Hash (_, _, k) | BitTestSet (_, _, _, k) | CsrRead (_, _, k)
    | CsrWrite (_, _, k) | RfifoRead (_, _, k) | TfifoWrite (_, _, k)
    | CtxArb k | Clone (_, _, k) ->
        go k
    | App _ | Halt _ -> ()
  in
  go t;
  tbl

(* Does [d]'s recursion group actually reach [d] again?  (Self or mutual
   recursion.) *)
let is_recursive (d : fundef) (group : fundef list) =
  let names = List.map (fun g -> g.name) group in
  (* reachability from d over references to group names *)
  let refs body =
    let fv = free_vars body in
    List.filter (fun n -> Ident.Set.mem n fv) names
  in
  let rec reach seen frontier =
    match frontier with
    | [] -> false
    | n :: rest ->
        if Ident.equal n d.name then true
        else if List.exists (Ident.equal n) seen then reach seen rest
        else begin
          let dn = List.find (fun g -> Ident.equal g.name n) group in
          reach (n :: seen) (refs dn.body @ rest)
        end
  in
  reach [] (refs d.body)

exception Expanded

let max_expansion = 200_000 (* size guard against pathological growth *)

(* One pass: find a call to a Func and expand it.  Returns None when no
   Func call remains. *)
let expand_one (t : term) : term option =
  let funcs = build_func_table t in
  let changed = ref false in
  let rec go t =
    if !changed then t
    else
      match t with
      | App (Var f, args) -> (
          match Ident.Tbl.find_opt funcs f with
          | None -> t
          | Some (d, group) ->
              changed := true;
              if not (is_recursive d group) then begin
                (* simple beta: copy the body with params bound *)
                let renamed = alpha_rename Ident.Map.empty (Fix ([ d ], App (Var d.name, args))) in
                match renamed with
                | Fix ([ d' ], App (Var _, args')) ->
                    let subst =
                      List.fold_left2
                        (fun m p a -> Ident.Map.add p a m)
                        Ident.Map.empty d'.params args'
                    in
                    substitute subst d'.body
                | _ -> Diag.ice "deproc: unexpected rename shape"
              end
              else begin
                (* instantiate a fresh copy of the whole group here *)
                let copy =
                  alpha_rename Ident.Map.empty (Fix (group, App (Var d.name, args)))
                in
                match copy with
                | Fix (group', call') ->
                    (* the copies act as loop blocks from now on *)
                    Fix
                      ( List.map (fun g -> { g with kind = Cont }) group',
                        call' )
                | _ -> Diag.ice "deproc: unexpected group shape"
              end)
      | App _ | Halt _ -> t
      | Prim (x, p, vs, k) -> Prim (x, p, vs, go k)
      | MemRead (sp, a, d, k) -> MemRead (sp, a, d, go k)
      | MemWrite (sp, a, v, k) -> MemWrite (sp, a, v, go k)
      | Hash (x, v, k) -> Hash (x, v, go k)
      | BitTestSet (x, a, v, k) -> BitTestSet (x, a, v, go k)
      | CsrRead (x, c, k) -> CsrRead (x, c, go k)
      | CsrWrite (c, v, k) -> CsrWrite (c, v, go k)
      | RfifoRead (a, d, k) -> RfifoRead (a, d, go k)
      | TfifoWrite (a, v, k) -> TfifoWrite (a, v, go k)
      | CtxArb k -> CtxArb (go k)
      | Clone (d, s, k) -> Clone (d, s, go k)
      | Branch (c, a, b, t1, t2) ->
          let t1' = go t1 in
          if !changed then Branch (c, a, b, t1', t2)
          else Branch (c, a, b, t1', go t2)
      | Fix (defs, k) ->
          let rec do_defs acc = function
            | [] -> (List.rev acc, go k)
            | d :: rest ->
                if !changed then (List.rev acc @ (d :: rest), k)
                else begin
                  let body' = go d.body in
                  do_defs ({ d with body = body' } :: acc) rest
                end
          in
          let defs', k' = do_defs [] defs in
          Fix (defs', k')
  in
  let t' = go t in
  if !changed then Some t' else None

(* Inline all Func calls, interleaving contraction to remove the dead
   originals and resolve continuation arguments. *)
let run (t : term) : term =
  let rec loop t fuel =
    if fuel = 0 then Diag.ice "deproc: expansion did not terminate";
    if size t > max_expansion then
      Diag.ice "deproc: program exploded past %d nodes (excessive inlining)"
        max_expansion;
    match expand_one t with
    | None -> t
    | Some t' -> loop (Contract.simplify ~max_rounds:4 t') (fuel - 1)
  in
  let t = loop t 10_000 in
  Contract.simplify t
