(* CPS conversion (paper §4.1-§4.2).

   Key moves, all from the paper:
     - records and tuples are flattened: every leaf field becomes its own
       CPS variable, so the register allocator sees independent scalars;
     - booleans are encoded as control flow where profitable: conditions
       branch directly, and boolean *values* are materialized 0/1 words
       only when stored;
     - assignments to source-level mutable variables are eliminated (SSA
       for temporaries): join points and loop headers become continuation
       parameters;
     - exceptions are continuations; an exception passed as an argument
       is eta-wrapped at the call site so that the callee can invoke it
       without knowing the caller's locals;
     - [unpack] expands to shift/mask extractions for *every* leaf; the
       optimizer's useless-variable elimination deletes the unused ones
       (paper §4.4). *)

open Support
module T = Nova.Types
module A = Nova.Ast
module Ta = Nova.Tast

type exn_binding =
  | Exn_local of Ir.var * Ident.t list (* handler cont + mutables it takes *)
  | Exn_param of Ir.var (* payload-only continuation *)

type ctx = {
  (* immutable flat bindings: variable -> flat values *)
  env : Ir.value list Ident.Tbl.t;
  (* current SSA value of each mutable variable *)
  mut_vals : Ir.value Ident.Tbl.t;
  (* in-scope mutables, outermost first *)
  mutable muts : Ident.t list;
  exns : exn_binding Ident.Tbl.t;
  globals : (string, Ir.var) Hashtbl.t;
}

let lookup ctx id =
  match Ident.Tbl.find_opt ctx.env id with
  | Some vs -> vs
  | None -> (
      match Ident.Tbl.find_opt ctx.mut_vals id with
      | Some v -> [ v ]
      | None -> Diag.ice "CPS convert: unbound %a" Ident.pp id)

(* Values of a captured list of mutables (a control construct's joins
   pass exactly the mutables in scope at the construct, not any inner
   [var]s declared inside its arms). *)
let muts_vals ctx ms = List.map (fun m -> Ident.Tbl.find ctx.mut_vals m) ms

let set_muts_list ctx ms vals =
  List.iter2 (fun m v -> Ident.Tbl.replace ctx.mut_vals m v) ms vals

(* Fresh parameter variables standing for the mutables at a join. *)
let fresh_mut_params_list ms = List.map (fun m -> Ident.derive m ".phi") ms

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let binop_prim : A.binop -> Ir.prim = function
  | A.Add -> Ir.Add
  | A.Sub -> Ir.Sub
  | A.Mul -> Ir.Mul
  | A.And -> Ir.And
  | A.Or -> Ir.Or
  | A.Xor -> Ir.Xor
  | A.Shl -> Ir.Shl
  | A.Shr -> Ir.Shr
  | A.Asr -> Ir.Asr
  | _ -> Diag.ice "binop_prim: not an arithmetic operator"

let cmp_of_binop : A.binop -> Ir.cmp = function
  | A.Eq -> Ir.Eq
  | A.Ne -> Ir.Ne
  | A.Lt -> Ir.Lt
  | A.Le -> Ir.Le
  | A.Gt -> Ir.Gt
  | A.Ge -> Ir.Ge
  | A.Ult -> Ir.Ult
  | A.Uge -> Ir.Uge
  | _ -> Diag.ice "cmp_of_binop: not a comparison"

(* Record field offsets in the flattened representation. *)
let record_field_slice fields fname =
  let rec go off = function
    | [] -> Diag.ice "record_field_slice: no field %s" fname
    | (n, t) :: rest ->
        let w = T.flat_width t in
        if n = fname then (off, w) else go (off + w) rest
  in
  go 0 fields

let tuple_slice ts i =
  let rec go off j = function
    | [] -> Diag.ice "tuple_slice: index out of range"
    | t :: rest ->
        let w = T.flat_width t in
        if j = i then (off, w) else go (off + w) (j + 1) rest
  in
  go 0 0 ts

let slice l off w = List.filteri (fun i _ -> i >= off && i < off + w) l

(* ------------------------------------------------------------------ *)
(* Conversion                                                          *)
(* ------------------------------------------------------------------ *)

let rec convert (ctx : ctx) (e : Ta.texpr) (k : Ir.value list -> Ir.term) :
    Ir.term =
  match e.Ta.desc with
  | Ta.Tint i -> k [ Ir.Int i ]
  | Ta.Tbool b -> k [ Ir.Int (if b then 1 else 0) ]
  | Ta.Tunit -> k []
  | Ta.Tvar id -> k (lookup ctx id)
  | Ta.Tfunval name -> k [ Ir.Var (Hashtbl.find ctx.globals name) ]
  | Ta.Tbinop (op, a, b) -> (
      match op with
      | A.LAnd | A.LOr | A.Eq | A.Ne | A.Lt | A.Le | A.Gt | A.Ge | A.Ult
      | A.Uge ->
          (* boolean result: materialize through a join *)
          materialize_bool ctx e k
      | _ ->
          convert ctx a (fun va ->
              convert ctx b (fun vb ->
                  let x = Ident.fresh "t" in
                  Ir.Prim
                    ( x,
                      binop_prim op,
                      [ List.hd va; List.hd vb ],
                      k [ Ir.Var x ] ))))
  | Ta.Tunop (op, a) -> (
      match op with
      | A.LNot -> materialize_bool ctx e k
      | A.Not ->
          convert ctx a (fun va ->
              let x = Ident.fresh "t" in
              Ir.Prim (x, Ir.Not, [ List.hd va ], k [ Ir.Var x ]))
      | A.Neg ->
          convert ctx a (fun va ->
              let x = Ident.fresh "t" in
              Ir.Prim (x, Ir.Neg, [ List.hd va ], k [ Ir.Var x ])))
  | Ta.Ttuple es -> convert_list ctx es (fun vss -> k (List.concat vss))
  | Ta.Trecord fs ->
      convert_list ctx (List.map snd fs) (fun vss -> k (List.concat vss))
  | Ta.Tselect (base, fname) -> (
      match T.expand base.Ta.ty with
      | T.Record fields ->
          let off, w = record_field_slice fields fname in
          convert ctx base (fun vs -> k (slice vs off w))
      | t -> Diag.ice "Tselect on %s" (T.to_string t))
  | Ta.Tproj (base, i) -> (
      match T.expand base.Ta.ty with
      | T.Tuple ts ->
          let off, w = tuple_slice ts i in
          convert ctx base (fun vs -> k (slice vs off w))
      | t -> Diag.ice "Tproj on %s" (T.to_string t))
  | Ta.Tif (c, t, f) -> convert_if ctx e c t f k
  | Ta.Tcall (callee, args) ->
      let fval =
        match callee with
        | Ta.Cglobal n -> Ir.Var (Hashtbl.find ctx.globals n)
        | Ta.Clocal id -> List.hd (lookup ctx id)
      in
      convert_args ctx args (fun argvals ->
          let width = T.flat_width e.Ta.ty in
          let rk = Ident.fresh "ret" in
          let results = List.init width (fun i -> Ident.fresh (Fmt.str "r%d" i)) in
          Ir.Fix
            ( [
                {
                  Ir.name = rk;
                  params = results;
                  kind = Ir.Cont;
                  body = k (List.map (fun r -> Ir.Var r) results);
                };
              ],
              Ir.App (fval, List.concat argvals @ [ Ir.Var rk ]) ))
  | Ta.Tlet (id, rhs, body) ->
      convert ctx rhs (fun vs ->
          Ident.Tbl.replace ctx.env id vs;
          convert ctx body k)
  | Ta.Tlettuple (ids, rhs, body) ->
      convert ctx rhs (fun vs ->
          (* split flat values among the pattern variables *)
          let tys =
            match T.expand rhs.Ta.ty with
            | T.Tuple ts -> ts
            | T.Word -> [ T.Word ]
            | t -> Diag.ice "lettuple on %s" (T.to_string t)
          in
          let rec assign ids tys vs =
            match (ids, tys) with
            | [], [] -> ()
            | id :: ids', ty :: tys' ->
                let w = T.flat_width ty in
                Ident.Tbl.replace ctx.env id (slice vs 0 w);
                assign ids' tys' (slice vs w (List.length vs - w))
            | _ -> Diag.ice "lettuple arity mismatch"
          in
          assign ids tys vs;
          convert ctx body k)
  | Ta.Tvardecl (id, rhs, body) ->
      convert ctx rhs (fun vs ->
          Ident.Tbl.replace ctx.mut_vals id (List.hd vs);
          ctx.muts <- ctx.muts @ [ id ];
          let result = convert ctx body k in
          ctx.muts <- List.filter (fun m -> not (Ident.equal m id)) ctx.muts;
          Ident.Tbl.remove ctx.mut_vals id;
          result)
  | Ta.Tassign (id, rhs) ->
      convert ctx rhs (fun vs ->
          Ident.Tbl.replace ctx.mut_vals id (List.hd vs);
          k [])
  | Ta.Tseq (a, b) -> convert ctx a (fun _ -> convert ctx b k)
  | Ta.Twhile (c, body) ->
      let header = Ident.fresh "loop" in
      let exit = Ident.fresh "endloop" in
      let loop_muts = ctx.muts in
      let hparams = fresh_mut_params_list loop_muts in
      let eparams = fresh_mut_params_list loop_muts in
      let entry_args = muts_vals ctx loop_muts in
      set_muts_list ctx loop_muts (List.map (fun p -> Ir.Var p) hparams);
      let hbody =
        convert_branch ctx c
          ~then_:(fun () ->
            convert ctx body (fun _ ->
                Ir.App (Ir.Var header, muts_vals ctx loop_muts)))
          ~else_:(fun () -> Ir.App (Ir.Var exit, muts_vals ctx loop_muts))
      in
      set_muts_list ctx loop_muts (List.map (fun p -> Ir.Var p) eparams);
      let ebody = k [] in
      Ir.Fix
        ( [
            { Ir.name = header; params = hparams; kind = Ir.Cont; body = hbody };
            { Ir.name = exit; params = eparams; kind = Ir.Cont; body = ebody };
          ],
          Ir.App (Ir.Var header, entry_args) )
  | Ta.Tunpack (lay, packed) ->
      convert ctx packed (fun words ->
          let words = Array.of_list words in
          let leaves = Nova.Layout.leaves lay in
          (* extract every leaf; DCE deletes unused extractions *)
          let rec extract acc = function
            | [] -> k (List.rev acc)
            | (leaf : Nova.Layout.leaf) :: rest ->
                extract_leaf words leaf (fun v -> extract (v :: acc) rest)
          in
          extract [] leaves)
  | Ta.Tpack (lay, pairs) ->
      let nwords = Nova.Layout.word_size lay in
      (* compute each output word as an OR of shifted leaf pieces *)
      convert_list ctx (List.map snd pairs) (fun leaf_vals ->
          let leaf_vals = List.map List.hd leaf_vals in
          (* per word: list of (piece, value) *)
          let per_word = Array.make nwords [] in
          List.iteri
            (fun i ((leaf : Nova.Layout.leaf), _) ->
              let v = List.nth leaf_vals i in
              List.iter
                (fun (p : Nova.Layout.piece) ->
                  per_word.(p.Nova.Layout.word) <-
                    (p, v) :: per_word.(p.Nova.Layout.word))
                (Nova.Layout.pieces ~offset:leaf.Nova.Layout.offset
                   ~width:leaf.Nova.Layout.width))
            pairs;
          let rec build_words i acc =
            if i >= nwords then k (List.rev acc)
            else
              build_word (List.rev per_word.(i)) (fun v ->
                  build_words (i + 1) (v :: acc))
          in
          build_words 0 [])
  | Ta.Tmemread (space, addr, n) ->
      convert ctx addr (fun a ->
          let dsts = Array.init n (fun i -> Ident.fresh (Fmt.str "m%d" i)) in
          Ir.MemRead
            ( space,
              List.hd a,
              dsts,
              k (Array.to_list (Array.map (fun d -> Ir.Var d) dsts)) ))
  | Ta.Tmemwrite (space, addr, v) ->
      convert ctx addr (fun a ->
          convert ctx v (fun vs ->
              Ir.MemWrite (space, List.hd a, Array.of_list vs, k [])))
  | Ta.Thash v ->
      convert ctx v (fun vs ->
          let x = Ident.fresh "h" in
          Ir.Hash (x, List.hd vs, k [ Ir.Var x ]))
  | Ta.Tbittestset (a, v) ->
      convert ctx a (fun av ->
          convert ctx v (fun vv ->
              let x = Ident.fresh "bts" in
              Ir.BitTestSet (x, List.hd av, List.hd vv, k [ Ir.Var x ])))
  | Ta.Tcsrread name ->
      let x = Ident.fresh "csr" in
      Ir.CsrRead (x, name, k [ Ir.Var x ])
  | Ta.Tcsrwrite (name, v) ->
      convert ctx v (fun vs -> Ir.CsrWrite (name, List.hd vs, k []))
  | Ta.Trfifo (addr, n) ->
      convert ctx addr (fun a ->
          let dsts = Array.init n (fun i -> Ident.fresh (Fmt.str "rf%d" i)) in
          Ir.RfifoRead
            ( List.hd a,
              dsts,
              k (Array.to_list (Array.map (fun d -> Ir.Var d) dsts)) ))
  | Ta.Ttfifo (addr, v) ->
      convert ctx addr (fun a ->
          convert ctx v (fun vs ->
              Ir.TfifoWrite (List.hd a, Array.of_list vs, k [])))
  | Ta.Tctxarb -> Ir.CtxArb (k [])
  | Ta.Traise (exn_id, args) -> (
      convert_list ctx args (fun argvals ->
          let payload = List.concat argvals in
          match Ident.Tbl.find_opt ctx.exns exn_id with
          | Some (Exn_local (h, muts)) ->
              let mut_vals =
                List.map (fun m -> Ident.Tbl.find ctx.mut_vals m) muts
              in
              Ir.App (Ir.Var h, payload @ mut_vals)
          | Some (Exn_param h) -> Ir.App (Ir.Var h, payload)
          | None -> (
              (* exception bound as a plain value (function parameter) *)
              match lookup ctx exn_id with
              | [ Ir.Var h ] -> Ir.App (Ir.Var h, payload)
              | _ -> Diag.ice "raise target %a not a continuation" Ident.pp exn_id)))
  | Ta.Ttry (body, handlers) -> convert_try ctx e body handlers k

(* Build one packed word from (piece, leaf value) contributions. *)
and build_word (contribs : (Nova.Layout.piece * Ir.value) list)
    (k : Ir.value -> Ir.term) : Ir.term =
  match contribs with
  | [] -> k (Ir.Int 0)
  | _ ->
      (* ((v >> shl) & mask) << shr, OR-ed together *)
      let piece_value (p : Nova.Layout.piece) v k =
        let masked after =
          (* mask to the piece width unless the piece is a full word *)
          if p.Nova.Layout.width >= 32 then k after
          else
            let m = Ident.fresh "pk" in
            Ir.Prim
              ( m,
                Ir.And,
                [ after; Ir.Int (Nova.Layout.mask_of_width p.Nova.Layout.width) ],
                k (Ir.Var m) )
        in
        if p.Nova.Layout.shl = 0 then masked v
        else
          let s = Ident.fresh "pk" in
          Ir.Prim (s, Ir.Shr, [ v; Ir.Int p.Nova.Layout.shl ], masked (Ir.Var s))
      in
      let shift_up (p : Nova.Layout.piece) v k =
        if p.Nova.Layout.shr = 0 then k v
        else
          let s = Ident.fresh "pk" in
          Ir.Prim (s, Ir.Shl, [ v; Ir.Int p.Nova.Layout.shr ], k (Ir.Var s))
      in
      let rec go acc = function
        | [] -> k acc
        | (p, v) :: rest ->
            piece_value p v (fun masked ->
                shift_up p masked (fun shifted ->
                    match acc with
                    | Ir.Int 0 -> go shifted rest
                    | _ ->
                        let o = Ident.fresh "pk" in
                        Ir.Prim (o, Ir.Or, [ acc; shifted ], go (Ir.Var o) rest)))
      in
      go (Ir.Int 0) contribs

(* Extract one leaf from packed words. *)
and extract_leaf (words : Ir.value array) (leaf : Nova.Layout.leaf)
    (k : Ir.value -> Ir.term) : Ir.term =
  let pieces =
    Nova.Layout.pieces ~offset:leaf.Nova.Layout.offset ~width:leaf.Nova.Layout.width
  in
  let rec go acc = function
    | [] -> k acc
    | (p : Nova.Layout.piece) :: rest ->
        let w = words.(p.Nova.Layout.word) in
        let after_shr k' =
          if p.Nova.Layout.shr = 0 then k' w
          else
            let s = Ident.fresh (String.concat "." leaf.Nova.Layout.path) in
            Ir.Prim (s, Ir.Shr, [ w; Ir.Int p.Nova.Layout.shr ], k' (Ir.Var s))
        in
        after_shr (fun shifted ->
            let after_mask k' =
              (* masking is unnecessary when the piece reaches the MSB *)
              if p.Nova.Layout.shr + p.Nova.Layout.width >= 32 then k' shifted
              else
                let m = Ident.fresh (String.concat "." leaf.Nova.Layout.path) in
                Ir.Prim
                  ( m,
                    Ir.And,
                    [ shifted; Ir.Int (Nova.Layout.mask_of_width p.Nova.Layout.width) ],
                    k' (Ir.Var m) )
            in
            after_mask (fun masked ->
                let after_shl k' =
                  if p.Nova.Layout.shl = 0 then k' masked
                  else
                    let s = Ident.fresh (String.concat "." leaf.Nova.Layout.path) in
                    Ir.Prim
                      (s, Ir.Shl, [ masked; Ir.Int p.Nova.Layout.shl ], k' (Ir.Var s))
                in
                after_shl (fun final ->
                    match acc with
                    | Ir.Int 0 -> go final rest
                    | _ ->
                        let o =
                          Ident.fresh (String.concat "." leaf.Nova.Layout.path)
                        in
                        Ir.Prim (o, Ir.Or, [ acc; final ], go (Ir.Var o) rest))))
  in
  go (Ir.Int 0) pieces

and convert_list ctx es k =
  let rec go acc = function
    | [] -> k (List.rev acc)
    | e :: rest -> convert ctx e (fun vs -> go (vs :: acc) rest)
  in
  go [] es

(* Arguments: exceptions passed as arguments get eta-wrapped so the
   callee can raise them without knowing our mutable state. *)
and convert_args ctx (args : Ta.texpr list) (k : Ir.value list list -> Ir.term)
    : Ir.term =
  let rec go acc = function
    | [] -> k (List.rev acc)
    | (a : Ta.texpr) :: rest -> (
        match (a.Ta.desc, a.Ta.ty) with
        | Ta.Tvar id, T.Exn payload -> (
            match Ident.Tbl.find_opt ctx.exns id with
            | Some (Exn_local (h, muts)) ->
                (* wrapper closes over the current mutable values *)
                let width = T.flat_width payload in
                let wrapper = Ident.fresh "exnw" in
                let params = List.init width (fun i -> Ident.fresh (Fmt.str "p%d" i)) in
                let mut_vals =
                  List.map (fun m -> Ident.Tbl.find ctx.mut_vals m) muts
                in
                Ir.Fix
                  ( [
                      {
                        Ir.name = wrapper;
                        params;
                        kind = Ir.Cont;
                        body =
                          Ir.App
                            ( Ir.Var h,
                              List.map (fun p -> Ir.Var p) params @ mut_vals );
                      };
                    ],
                    go ([ Ir.Var wrapper ] :: acc) rest )
            | Some (Exn_param h) -> go ([ Ir.Var h ] :: acc) rest
            | None -> convert ctx a (fun vs -> go (vs :: acc) rest))
        | _ -> convert ctx a (fun vs -> go (vs :: acc) rest))
  in
  go [] args

(* Convert a boolean expression into a branch on two thunks. *)
and convert_branch ctx (c : Ta.texpr) ~(then_ : unit -> Ir.term)
    ~(else_ : unit -> Ir.term) : Ir.term =
  (* Both arm thunks must observe the mutable-variable state as it stands
     right after the condition was evaluated; the state is snapshotted at
     the branch point and restored before each arm runs. *)
  let with_both_arms build =
    let snapshot =
      List.map (fun m -> (m, Ident.Tbl.find ctx.mut_vals m)) ctx.muts
    in
    let restore () =
      List.iter (fun (m, v) -> Ident.Tbl.replace ctx.mut_vals m v) snapshot
    in
    restore ();
    let tt = then_ () in
    restore ();
    let ff = else_ () in
    build tt ff
  in
  match c.Ta.desc with
  | Ta.Tbool true -> then_ ()
  | Ta.Tbool false -> else_ ()
  | Ta.Tunop (A.LNot, a) -> convert_branch ctx a ~then_:else_ ~else_:then_
  | Ta.Tbinop (A.LAnd, a, b) ->
      (* short-circuit: the else continuation is shared between the two
         tests, so it takes the mutables as parameters (the two paths may
         reach it with different states) *)
      let ek = Ident.fresh "else" in
      let scope_muts = ctx.muts in
      let eparams = fresh_mut_params_list scope_muts in
      let jump_else () = Ir.App (Ir.Var ek, muts_vals ctx scope_muts) in
      let main =
        convert_branch ctx a
          ~then_:(fun () -> convert_branch ctx b ~then_ ~else_:jump_else)
          ~else_:jump_else
      in
      set_muts_list ctx scope_muts (List.map (fun p -> Ir.Var p) eparams);
      let ebody = else_ () in
      Ir.Fix
        ([ { Ir.name = ek; params = eparams; kind = Ir.Cont; body = ebody } ], main)
  | Ta.Tbinop (A.LOr, a, b) ->
      let tk = Ident.fresh "then" in
      let scope_muts = ctx.muts in
      let tparams = fresh_mut_params_list scope_muts in
      let jump_then () = Ir.App (Ir.Var tk, muts_vals ctx scope_muts) in
      let main =
        convert_branch ctx a ~then_:jump_then
          ~else_:(fun () -> convert_branch ctx b ~then_:jump_then ~else_)
      in
      set_muts_list ctx scope_muts (List.map (fun p -> Ir.Var p) tparams);
      let tbody = then_ () in
      Ir.Fix
        ([ { Ir.name = tk; params = tparams; kind = Ir.Cont; body = tbody } ], main)
  | Ta.Tbinop ((A.Eq | A.Ne | A.Lt | A.Le | A.Gt | A.Ge | A.Ult | A.Uge) as op, a, b) ->
      convert ctx a (fun va ->
          convert ctx b (fun vb ->
              with_both_arms (fun tt ff ->
                  Ir.Branch (cmp_of_binop op, List.hd va, List.hd vb, tt, ff))))
  | _ ->
      (* general boolean value: compare against 0 *)
      convert ctx c (fun vs ->
          with_both_arms (fun tt ff ->
              Ir.Branch (Ir.Ne, List.hd vs, Ir.Int 0, tt, ff)))

(* Materialize a boolean expression as a 0/1 word through a join. *)
and materialize_bool ctx (e : Ta.texpr) (k : Ir.value list -> Ir.term) :
    Ir.term =
  let jk = Ident.fresh "bjoin" in
  let res = Ident.fresh "b" in
  let scope_muts = ctx.muts in
  let mut_params = fresh_mut_params_list scope_muts in
  let mk_arm v () = Ir.App (Ir.Var jk, v :: muts_vals ctx scope_muts) in
  let branch =
    convert_branch ctx e ~then_:(mk_arm (Ir.Int 1)) ~else_:(mk_arm (Ir.Int 0))
  in
  set_muts_list ctx scope_muts (List.map (fun p -> Ir.Var p) mut_params);
  Ir.Fix
    ( [
        {
          Ir.name = jk;
          params = res :: mut_params;
          kind = Ir.Cont;
          body = k [ Ir.Var res ];
        };
      ],
      branch )

(* If expression with a value result. *)
and convert_if ctx (e : Ta.texpr) c t f (k : Ir.value list -> Ir.term) :
    Ir.term =
  let width = T.flat_width e.Ta.ty in
  let jk = Ident.fresh "join" in
  let results = List.init width (fun i -> Ident.fresh (Fmt.str "v%d" i)) in
  let scope_muts = ctx.muts in
  let mut_params = fresh_mut_params_list scope_muts in
  let arm branch_e () =
    convert ctx branch_e (fun vs ->
        (* diverging arms (raise) produce no values; pad for the join *)
        let vs =
          if List.length vs < width then
            vs @ List.init (width - List.length vs) (fun _ -> Ir.Int 0)
          else vs
        in
        Ir.App (Ir.Var jk, vs @ muts_vals ctx scope_muts))
  in
  let branch = convert_branch ctx c ~then_:(arm t) ~else_:(arm f) in
  set_muts_list ctx scope_muts (List.map (fun p -> Ir.Var p) mut_params);
  Ir.Fix
    ( [
        {
          Ir.name = jk;
          params = results @ mut_params;
          kind = Ir.Cont;
          body = k (List.map (fun r -> Ir.Var r) results);
        };
      ],
      branch )

and convert_try ctx (e : Ta.texpr) body handlers (k : Ir.value list -> Ir.term)
    : Ir.term =
  let width = T.flat_width e.Ta.ty in
  let jk = Ident.fresh "tryjoin" in
  let results = List.init width (fun i -> Ident.fresh (Fmt.str "v%d" i)) in
  let scope_muts = ctx.muts in
  let mut_params = fresh_mut_params_list scope_muts in
  let muts0 = muts_vals ctx scope_muts in
  let finish vs =
    let vs =
      if List.length vs < width then
        vs @ List.init (width - List.length vs) (fun _ -> Ir.Int 0)
      else vs
    in
    Ir.App (Ir.Var jk, vs @ muts_vals ctx scope_muts)
  in
  (* handler continuations: payload params + mutables at the try *)
  let hdefs =
    List.map
      (fun (h : Ta.thandler) ->
        let hname = Ident.derive h.Ta.h_exn ".hdl" in
        (h, hname))
      handlers
  in
  List.iter
    (fun ((h : Ta.thandler), hname) ->
      Ident.Tbl.replace ctx.exns h.Ta.h_exn (Exn_local (hname, ctx.muts)))
    hdefs;
  let body_term = convert ctx body finish in
  let handler_defs =
    List.map
      (fun ((h : Ta.thandler), hname) ->
        set_muts_list ctx scope_muts muts0;
        let payload_params = List.map fst h.Ta.h_params in
        let hmut_params = fresh_mut_params_list scope_muts in
        List.iter
          (fun (p, _) -> Ident.Tbl.replace ctx.env p [ Ir.Var p ])
          h.Ta.h_params;
        set_muts_list ctx scope_muts (List.map (fun p -> Ir.Var p) hmut_params);
        let hbody = convert ctx h.Ta.h_body finish in
        {
          Ir.name = hname;
          params = payload_params @ hmut_params;
          kind = Ir.Cont;
          body = hbody;
        })
      hdefs
  in
  List.iter
    (fun ((h : Ta.thandler), _) -> Ident.Tbl.remove ctx.exns h.Ta.h_exn)
    hdefs;
  set_muts_list ctx scope_muts (List.map (fun p -> Ir.Var p) mut_params);
  Ir.Fix
    ( {
        Ir.name = jk;
        params = results @ mut_params;
        kind = Ir.Cont;
        body = k (List.map (fun r -> Ir.Var r) results);
      }
      :: handler_defs,
      body_term )

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)
(* ------------------------------------------------------------------ *)

(* Convert a typed program into a single CPS term:
   Fix [all functions] (App entry (entry_args, halt)). *)
let convert_program ?(entry_args = []) (prog : Ta.tprogram) : Ir.term =
  let globals = Hashtbl.create 16 in
  List.iter
    (fun (f : Ta.tfun) ->
      Hashtbl.replace globals f.Ta.f_name (Ident.fresh f.Ta.f_name))
    prog.Ta.funs;
  let fundefs =
    List.map
      (fun (f : Ta.tfun) ->
        let ctx =
          {
            env = Ident.Tbl.create 64;
            mut_vals = Ident.Tbl.create 16;
            muts = [];
            exns = Ident.Tbl.create 8;
            globals;
          }
        in
        (* flatten parameters *)
        let flat_params =
          List.concat_map
            (fun (id, ty) ->
              match ty with
              | T.Exn _ ->
                  Ident.Tbl.replace ctx.exns id (Exn_param id);
                  Ident.Tbl.replace ctx.env id [ Ir.Var id ];
                  [ id ]
              | T.Fun _ ->
                  Ident.Tbl.replace ctx.env id [ Ir.Var id ];
                  [ id ]
              | _ ->
                  let w = T.flat_width ty in
                  if w = 1 then begin
                    Ident.Tbl.replace ctx.env id [ Ir.Var id ];
                    [ id ]
                  end
                  else begin
                    let parts =
                      List.init w (fun i -> Ident.derive id (Fmt.str ".%d" i))
                    in
                    Ident.Tbl.replace ctx.env id
                      (List.map (fun p -> Ir.Var p) parts);
                    parts
                  end)
            f.Ta.f_params
        in
        let retk = Ident.fresh "k" in
        let body = convert ctx f.Ta.f_body (fun vs -> Ir.App (Ir.Var retk, vs)) in
        {
          Ir.name = Hashtbl.find globals f.Ta.f_name;
          params = flat_params @ [ retk ];
          kind = Ir.Func;
          body;
        })
      prog.Ta.funs
  in
  let halt = Ident.fresh "halt" in
  let entry_fn = Hashtbl.find globals prog.Ta.entry in
  (* a Cont that halts with whatever the entry returned *)
  let entry_sig =
    List.find (fun (f : Ta.tfun) -> f.Ta.f_name = prog.Ta.entry) prog.Ta.funs
  in
  let retwidth = T.flat_width entry_sig.Ta.f_ret in
  let halt_params = List.init retwidth (fun i -> Ident.fresh (Fmt.str "out%d" i)) in
  Ir.Fix
    ( fundefs
      @ [
          {
            Ir.name = halt;
            params = halt_params;
            kind = Ir.Cont;
            body = Ir.Halt (List.map (fun p -> Ir.Var p) halt_params);
          };
        ],
      Ir.App
        ( Ir.Var entry_fn,
          List.map (fun i -> Ir.Int i) entry_args @ [ Ir.Var halt ] ) )
