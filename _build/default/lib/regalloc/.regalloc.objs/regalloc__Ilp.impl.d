lib/regalloc/ilp.ml: Ampl Array Float Hashtbl Ident Ixp List Lp Modelgen Option Support
