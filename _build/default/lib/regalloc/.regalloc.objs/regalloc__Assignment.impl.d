lib/regalloc/assignment.ml: Array Diag Fmt Ident Ilp Ixp List Modelgen Support
