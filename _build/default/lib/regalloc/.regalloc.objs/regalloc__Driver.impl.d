lib/regalloc/driver.ml: Array Assignment Baseline Cps Diag Emit Fmt Ident Ilp Ixp List Lp Modelgen Nova Support
