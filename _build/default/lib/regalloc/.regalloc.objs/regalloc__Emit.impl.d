lib/regalloc/emit.ml: Array Assignment Fmt Hashtbl Ident Ixp List Modelgen Support Union_find Vec
