lib/regalloc/modelgen.ml: Array Hashtbl Ident Ixp List Option Support Union_find
