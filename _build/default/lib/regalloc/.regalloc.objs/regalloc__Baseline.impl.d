lib/regalloc/baseline.ml: Array Assignment Hashtbl Ident Ixp List Modelgen Option Support
