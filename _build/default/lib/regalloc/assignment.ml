(* A bank/color assignment for a flowgraph: the common interface between
   the ILP allocator and the heuristic baseline.  [Emit] consumes this to
   produce the physical program, so both allocators share emission,
   checking and simulation. *)

open Support
module Bank = Ixp.Bank

type t = {
  mg : Modelgen.t;
  bank_before : int -> Ident.t -> Bank.t; (* point id -> temp -> bank *)
  bank_after : int -> Ident.t -> Bank.t;
  (* non-identity moves performed at a point, in no particular order *)
  moves_at : int -> (Ident.t * Bank.t * Bank.t) list;
  (* register number within a transfer bank (point-independent, §9) *)
  xfer_color : Ident.t -> Bank.t -> int;
}

let of_ilp (s : Ilp.solution) : t =
  let mg = s.Ilp.ilp.Ilp.mg in
  let get_bank f p v =
    match f s p v with
    | Some b -> b
    | None ->
        Diag.ice "assignment: no bank for %a at point %a" Ident.pp v
          Ixp.Flowgraph.pp_point (Modelgen.point_of mg p)
  in
  {
    mg;
    bank_before = get_bank Ilp.bank_before;
    bank_after = get_bank Ilp.bank_after;
    moves_at = (fun p -> Ilp.moves_at s p);
    xfer_color =
      (fun v b ->
        match Ilp.color_of s v b with
        | Some r -> r
        | None ->
            Diag.ice "assignment: no %s color for %a" (Bank.to_string b)
              Ident.pp v);
  }

(* Sanity checks every assignment must satisfy; used by tests and run in
   the driver under a debug flag.  Checks the copy discipline (banks agree
   across instruction and control edges modulo declared moves) and that
   aggregate colors are adjacent. *)
let validate (a : t) : string list =
  let mg = a.mg in
  let errors = ref [] in
  let err fmt = Fmt.kstr (fun s -> errors := s :: !errors) fmt in
  (* moves are consistent with before/after banks *)
  Modelgen.iter_exists mg (fun p v ->
      let b = a.bank_before p v and b' = a.bank_after p v in
      let declared = List.filter (fun (w, _, _) -> Ident.equal w v) (a.moves_at p) in
      match declared with
      | [] ->
          if not (Bank.equal b b') then
            err "%a changes bank %s->%s at %a without a move" Ident.pp v
              (Bank.to_string b) (Bank.to_string b') Ixp.Flowgraph.pp_point
              (Modelgen.point_of mg p)
      | [ (_, mb, mb') ] ->
          if not (Bank.equal b mb && Bank.equal b' mb') then
            err "%a declared move %s->%s disagrees with banks %s->%s" Ident.pp
              v (Bank.to_string mb) (Bank.to_string mb') (Bank.to_string b)
              (Bank.to_string b')
      | _ -> err "%a moves twice at one point" Ident.pp v);
  (* copies across instruction and control edges *)
  List.iter
    (fun (p1, p2, v) ->
      let b1 = a.bank_after p1 v and b2 = a.bank_before p2 v in
      if not (Bank.equal b1 b2) then
        err "copy of %a broken: after %a in %s, before %a in %s" Ident.pp v
          Ixp.Flowgraph.pp_point (Modelgen.point_of mg p1) (Bank.to_string b1)
          Ixp.Flowgraph.pp_point (Modelgen.point_of mg p2) (Bank.to_string b2))
    mg.Modelgen.copies;
  (* aggregates adjacent and in range *)
  let check_agg members b =
    Array.iteri
      (fun j v ->
        let c = a.xfer_color v b in
        if j > 0 && c <> a.xfer_color members.(j - 1) b + 1 then
          err "aggregate member %a not adjacent in %s" Ident.pp v
            (Bank.to_string b);
        if c < 0 || c > 7 then err "color %d out of range" c)
      members
  in
  List.iter
    (fun (ad : Modelgen.agg_def) ->
      check_agg ad.Modelgen.ad_members (Ixp.Insn.read_bank ad.Modelgen.ad_space))
    mg.Modelgen.agg_defs;
  List.iter
    (fun (au : Modelgen.agg_use) ->
      check_agg au.Modelgen.au_members (Ixp.Insn.write_bank au.Modelgen.au_space))
    mg.Modelgen.agg_uses;
  (* same-register pairs *)
  List.iter
    (fun (d, s) ->
      if a.xfer_color d Bank.L <> a.xfer_color s Bank.S then
        err "same-reg pair %a/%a disagrees" Ident.pp d Ident.pp s)
    mg.Modelgen.same_reg;
  List.rev !errors
