(* Liveness analysis over virtual-register flowgraphs.

   Produces, per program point, the set of live temporaries; also the
   paper's [Exists] set (live sets extended with immediately-dead
   definitions) and [Copy] relation (temporaries carried unchanged from
   one point to the next, including across control edges). *)

open Support

type t = {
  graph : Ident.t Flowgraph.t;
  (* live-in per point, keyed by point name *)
  live : (string, Ident.Set.t) Hashtbl.t;
  exists : (string, Ident.Set.t) Hashtbl.t;
  block_live_in : (string, Ident.Set.t) Hashtbl.t;
  block_live_out : (string, Ident.Set.t) Hashtbl.t;
}

let set_of_list = Ident.Set.of_list

(* Backward dataflow at block granularity, then a forward sweep inside
   each block to get per-point sets. *)
let compute (g : Ident.t Flowgraph.t) =
  let block_use_def = Hashtbl.create 16 in
  Flowgraph.iter_blocks
    (fun b ->
      (* use/def computed backward through the block *)
      let use = ref (set_of_list (Insn.term_uses b.Flowgraph.term)) in
      let def = ref Ident.Set.empty in
      for k = Array.length b.Flowgraph.insns - 1 downto 0 do
        let i = b.Flowgraph.insns.(k) in
        let dlist = Insn.defs i and ulist = Insn.uses i in
        List.iter
          (fun d ->
            use := Ident.Set.remove d !use;
            def := Ident.Set.add d !def)
          dlist;
        List.iter (fun u -> use := Ident.Set.add u !use) ulist
      done;
      Hashtbl.replace block_use_def b.Flowgraph.label (!use, !def))
    g;
  let live_in = Hashtbl.create 16 in
  let live_out = Hashtbl.create 16 in
  Flowgraph.iter_blocks
    (fun b ->
      Hashtbl.replace live_in b.Flowgraph.label Ident.Set.empty;
      Hashtbl.replace live_out b.Flowgraph.label Ident.Set.empty)
    g;
  let changed = ref true in
  while !changed do
    changed := false;
    (* reverse layout order converges faster for mostly-forward graphs *)
    List.iter
      (fun b ->
        let label = b.Flowgraph.label in
        let out =
          List.fold_left
            (fun acc succ -> Ident.Set.union acc (Hashtbl.find live_in succ))
            Ident.Set.empty
            (Insn.term_targets b.Flowgraph.term)
        in
        let use, def = Hashtbl.find block_use_def label in
        let inn = Ident.Set.union use (Ident.Set.diff out def) in
        if not (Ident.Set.equal inn (Hashtbl.find live_in label)) then begin
          changed := true;
          Hashtbl.replace live_in label inn
        end;
        Hashtbl.replace live_out label out)
      (List.rev (Flowgraph.blocks g))
  done;
  (* Per-point live sets: backward within each block from live_out. *)
  let live = Hashtbl.create 64 in
  let exists = Hashtbl.create 64 in
  Flowgraph.iter_blocks
    (fun b ->
      let label = b.Flowgraph.label in
      let n = Array.length b.Flowgraph.insns in
      let cur = ref (Hashtbl.find live_out label) in
      (* exit point: live-out of block plus terminator uses *)
      let at_term =
        Ident.Set.union !cur (set_of_list (Insn.term_uses b.Flowgraph.term))
      in
      let pt pos = Flowgraph.point_name { Flowgraph.block = label; pos } in
      Hashtbl.replace live (pt n) at_term;
      Hashtbl.replace exists (pt n) at_term;
      cur := at_term;
      for k = n - 1 downto 0 do
        let i = b.Flowgraph.insns.(k) in
        let dset = set_of_list (Insn.defs i) in
        let uset = set_of_list (Insn.uses i) in
        (* Exists at the point *after* instruction k (i.e. point k+1)
           additionally contains definitions that are immediately dead
           (paper §5.2). *)
        let after_name = pt (k + 1) in
        Hashtbl.replace exists after_name
          (Ident.Set.union (Hashtbl.find exists after_name) dset);
        let before = Ident.Set.union uset (Ident.Set.diff !cur dset) in
        Hashtbl.replace live (pt k) before;
        Hashtbl.replace exists (pt k) before;
        cur := before
      done)
    g;
  {
    graph = g;
    live;
    exists;
    block_live_in = live_in;
    block_live_out = live_out;
  }

let live_at t (p : Flowgraph.point) =
  Option.value ~default:Ident.Set.empty
    (Hashtbl.find_opt t.live (Flowgraph.point_name p))

let exists_at t (p : Flowgraph.point) =
  Option.value ~default:Ident.Set.empty
    (Hashtbl.find_opt t.exists (Flowgraph.point_name p))

let block_live_in t label = Hashtbl.find t.block_live_in label
let block_live_out t label = Hashtbl.find t.block_live_out label

(* The Copy relation: (p1, p2, v) when v is carried unchanged from p1 to
   p2.  Within a block this is "v live (or existing) at both endpoints of
   an instruction that neither defines v"; across control edges it is
   "v live at the successor's entry". *)
let copies t =
  let result = ref [] in
  List.iter
    (fun edge ->
      match edge with
      | Flowgraph.Through_insn (p1, p2) ->
          let b = Flowgraph.block t.graph p1.Flowgraph.block in
          let i = b.Flowgraph.insns.(p1.Flowgraph.pos) in
          let dset = set_of_list (Insn.defs i) in
          let after = exists_at t p2 in
          (* v flows p1 -> p2 if present on both sides and not redefined *)
          Ident.Set.iter
            (fun v ->
              if Ident.Set.mem v after && not (Ident.Set.mem v dset) then
                result := (p1, p2, v) :: !result)
            (exists_at t p1)
      | Flowgraph.Control (p1, p2) ->
          Ident.Set.iter
            (fun v ->
              if Ident.Set.mem v (live_at t p2) then
                result := (p1, p2, v) :: !result)
            (exists_at t p1))
    (Flowgraph.point_edges t.graph);
  List.rev !result

(* All temporaries appearing in the graph. *)
let all_temps g =
  let acc = ref Ident.Set.empty in
  Flowgraph.iter_blocks
    (fun b ->
      Array.iter
        (fun i ->
          List.iter (fun v -> acc := Ident.Set.add v !acc) (Insn.defs i);
          List.iter (fun v -> acc := Ident.Set.add v !acc) (Insn.uses i))
        b.Flowgraph.insns;
      List.iter
        (fun v -> acc := Ident.Set.add v !acc)
        (Insn.term_uses b.Flowgraph.term))
    g;
  !acc

(* Interference in the classic sense: two temporaries are simultaneously
   live at some point.  The SSU pass later *removes* clone-mates from
   this relation (paper §10). *)
let interferences t =
  let pairs = Hashtbl.create 256 in
  let consider set =
    let l = Ident.Set.elements set in
    let rec go = function
      | [] -> ()
      | v :: rest ->
          List.iter
            (fun w ->
              let key =
                if Ident.compare v w < 0 then (v, w) else (w, v)
              in
              Hashtbl.replace pairs key ())
            rest;
          go rest
    in
    go l
  in
  Hashtbl.iter (fun _ set -> consider set) t.exists;
  Hashtbl.fold (fun (v, w) () acc -> (v, w) :: acc) pairs []
