(* Micro-engine-flavoured assembly printer for allocated programs.

   The syntax is modelled on the Intel IXP assembler's general shape
   (destination first, transfer registers prefixed with $) but is meant
   for human inspection and golden tests, not for Intel's toolchain. *)

let reg_syntax (r : Reg.t) =
  match Reg.bank r with
  | Bank.A -> Printf.sprintf "a%d" (Reg.num r)
  | Bank.B -> Printf.sprintf "b%d" (Reg.num r)
  | Bank.L -> Printf.sprintf "$l%d" (Reg.num r)
  | Bank.LD -> Printf.sprintf "$$l%d" (Reg.num r)
  | Bank.S -> Printf.sprintf "$s%d" (Reg.num r)
  | Bank.SD -> Printf.sprintf "$$s%d" (Reg.num r)
  | Bank.M -> Printf.sprintf "m%d" (Reg.num r)
  | Bank.C -> Printf.sprintf "const%d" (Reg.num r)

let operand_syntax = function
  | Insn.Reg r -> reg_syntax r
  | Insn.Lit i -> string_of_int i

let addr_syntax (a : Reg.t Insn.addr) =
  if a.Insn.disp = 0 then operand_syntax a.Insn.base
  else Printf.sprintf "%s, %d" (operand_syntax a.Insn.base) a.Insn.disp

let agg_syntax regs =
  String.concat ", " (Array.to_list (Array.map reg_syntax regs))

let insn_syntax (i : Reg.t Insn.t) =
  match i with
  | Insn.Alu { dst; op; x; y } ->
      Printf.sprintf "alu[%s, %s, %s, %s]" (reg_syntax dst) (reg_syntax x)
        (Insn.alu_op_to_string op) (operand_syntax y)
  | Insn.Alu1 { dst; op = `Mov; src } ->
      Printf.sprintf "alu[%s, --, b, %s]" (reg_syntax dst) (reg_syntax src)
  | Insn.Alu1 { dst; op = `Not; src } ->
      Printf.sprintf "alu[%s, --, ~b, %s]" (reg_syntax dst) (reg_syntax src)
  | Insn.Alu1 { dst; op = `Neg; src } ->
      Printf.sprintf "alu[%s, 0, -, %s]" (reg_syntax dst) (reg_syntax src)
  | Insn.Imm { dst; value } ->
      Printf.sprintf "immed[%s, 0x%x]" (reg_syntax dst) (value land 0xFFFFFFFF)
  | Insn.Move { dst; src } ->
      Printf.sprintf "alu[%s, --, b, %s] ; move" (reg_syntax dst)
        (reg_syntax src)
  | Insn.Read { space; dsts; addr } ->
      Printf.sprintf "%s[read, %s, %s, %d] ; -> %s"
        (Insn.space_to_string space)
        (reg_syntax dsts.(0))
        (addr_syntax addr) (Array.length dsts) (agg_syntax dsts)
  | Insn.Write { space; srcs; addr } ->
      Printf.sprintf "%s[write, %s, %s, %d] ; <- %s"
        (Insn.space_to_string space)
        (reg_syntax srcs.(0))
        (addr_syntax addr) (Array.length srcs) (agg_syntax srcs)
  | Insn.Hash { dst; src } ->
      Printf.sprintf "hash1_48[%s] ; result in %s" (reg_syntax src)
        (reg_syntax dst)
  | Insn.Bit_test_set { dst; src; addr } ->
      Printf.sprintf "sram[bit_wr, %s, %s, set_test] ; old -> %s"
        (reg_syntax src) (addr_syntax addr) (reg_syntax dst)
  | Insn.Clone { dsts; src } ->
      Printf.sprintf "; clone %s -> %s" (reg_syntax src) (agg_syntax dsts)
  | Insn.Spill { slot; src } ->
      Printf.sprintf "scratch[write, %s, spill_%d, 1] ; spill" (reg_syntax src)
        slot
  | Insn.Reload { slot; dst } ->
      Printf.sprintf "scratch[read, %s, spill_%d, 1] ; reload" (reg_syntax dst)
        slot
  | Insn.Csr_read { dst; csr } ->
      Printf.sprintf "csr[read, %s, %s]" (reg_syntax dst) csr
  | Insn.Csr_write { src; csr } ->
      Printf.sprintf "csr[write, %s, %s]" (reg_syntax src) csr
  | Insn.Rfifo_read { dsts; addr } ->
      Printf.sprintf "r_fifo_rd[%s, %s, %d]" (reg_syntax dsts.(0))
        (addr_syntax addr) (Array.length dsts)
  | Insn.Tfifo_write { srcs; addr } ->
      Printf.sprintf "t_fifo_wr[%s, %s, %d]" (reg_syntax srcs.(0))
        (addr_syntax addr) (Array.length srcs)
  | Insn.Ctx_arb -> "ctx_arb[voluntary]"
  | Insn.Nop -> "nop"

let term_syntax (t : Reg.t Insn.terminator) =
  match t with
  | Insn.Jump l -> Printf.sprintf "br[%s#]" l
  | Insn.Branch { cond; x; y; ifso; ifnot } ->
      Printf.sprintf "br_%s[%s, %s, %s#] ; else %s#"
        (Insn.cond_to_string cond) (reg_syntax x) (operand_syntax y) ifso ifnot
  | Insn.Halt -> "halt"

let program_to_string (g : Reg.t Flowgraph.t) =
  let buf = Buffer.create 1024 in
  Flowgraph.iter_blocks
    (fun b ->
      Buffer.add_string buf (b.Flowgraph.label ^ "#:\n");
      Array.iter
        (fun i -> Buffer.add_string buf ("    " ^ insn_syntax i ^ "\n"))
        b.Flowgraph.insns;
      Buffer.add_string buf ("    " ^ term_syntax b.Flowgraph.term ^ "\n"))
    g;
  Buffer.contents buf
