(* Static execution-frequency estimation (paper §7).

   Branch probabilities come from Ball-Larus/Wu-Larus style heuristics
   whose predictions are combined with Dempster-Shafer evidence
   combination, as in Wu & Larus (MICRO-27); block frequencies are then
   obtained from the flow equations.  Unlike the original algorithm,
   which propagates over reducible loop nests, we solve the equations by
   damped power iteration, which converges on irreducible flowgraphs too
   (the paper notes its own variation "can cope with irreducible
   flowgraphs"). *)

type t = {
  block_freq : (string, float) Hashtbl.t;
  edge_prob : (string * string, float) Hashtbl.t;
}

(* Dempster-Shafer combination of two probability estimates for the same
   (binary) event: m1 (+) m2 = p1 p2 / (p1 p2 + (1-p1)(1-p2)). *)
let dempster_shafer p1 p2 =
  let num = p1 *. p2 in
  let den = num +. ((1. -. p1) *. (1. -. p2)) in
  if den <= 0. then 0.5 else num /. den

(* ------------------------------------------------------------------ *)
(* Branch-prediction heuristics                                        *)
(* ------------------------------------------------------------------ *)

(* Loop detection: back edges found via DFS; a block is a loop header if
   some DFS back edge targets it.  Irreducible graphs simply yield a
   conservative set of "retreating" edges, which is all we need. *)
let back_edges g =
  let state = Hashtbl.create 16 in
  (* 0 = unvisited, 1 = on stack, 2 = done *)
  let edges = ref [] in
  let rec dfs label =
    Hashtbl.replace state label 1;
    let b = Flowgraph.block g label in
    List.iter
      (fun succ ->
        match Hashtbl.find_opt state succ with
        | Some 1 -> edges := (label, succ) :: !edges
        | Some _ -> ()
        | None -> dfs succ)
      (Insn.term_targets b.Flowgraph.term);
    Hashtbl.replace state label 2
  in
  (match Flowgraph.blocks g with
  | [] -> ()
  | entry :: _ -> dfs entry.Flowgraph.label);
  (* unreachable blocks: scan them too so that every block has a state *)
  List.iter
    (fun b ->
      if not (Hashtbl.mem state b.Flowgraph.label) then dfs b.Flowgraph.label)
    (Flowgraph.blocks g);
  !edges

(* Does the subgraph starting at [label] reach only Halt quickly?  Used
   for the "branch to an exit block is unlikely" heuristic. *)
let leads_to_halt g label =
  let b = Flowgraph.block g label in
  match b.Flowgraph.term with
  | Insn.Halt -> true
  | Insn.Jump l -> (
      match (Flowgraph.block g l).Flowgraph.term with
      | Insn.Halt -> true
      | _ -> false)
  | Insn.Branch _ -> false

(* Heuristic probabilities from Wu & Larus (taken-probability of the
   [ifso] arm). *)
let loop_branch_prob = 0.88 (* LBH: edge back to a loop header is taken *)
let opcode_eq_prob = 0.16 (* OH: equality comparisons usually fail *)
let guard_return_prob = 0.28 (* RH-like: arm leading to Halt is unlikely *)

let branch_probability g ~headers b ~ifso ~ifnot ~cond =
  (* Start from no evidence (0.5) and combine applicable heuristics. *)
  let p = ref 0.5 in
  let apply prob_taken = p := dempster_shafer !p prob_taken in
  (* Loop heuristic: if one arm targets a loop header reached by a back
     edge from this block, predict taken. *)
  let is_back_to_header target =
    List.exists (fun (src, dst) -> src = b && dst = target) headers
  in
  if is_back_to_header ifso then apply loop_branch_prob
  else if is_back_to_header ifnot then apply (1. -. loop_branch_prob);
  (* Opcode heuristic: == branches are usually not taken. *)
  (match cond with
  | Insn.Eq -> apply opcode_eq_prob
  | Insn.Ne -> apply (1. -. opcode_eq_prob)
  | _ -> ());
  (* Exit heuristic: an arm that falls into Halt (error/slow path exits,
     ubiquitous in fast-path network code) is unlikely. *)
  (match (leads_to_halt g ifso, leads_to_halt g ifnot) with
  | true, false -> apply guard_return_prob
  | false, true -> apply (1. -. guard_return_prob)
  | _ -> ());
  !p

(* ------------------------------------------------------------------ *)
(* Flow equations                                                      *)
(* ------------------------------------------------------------------ *)

let damping = 0.9 (* keeps irreducible/cyclic graphs convergent *)
let iterations = 200

let compute (g : _ Flowgraph.t) =
  let headers = back_edges g in
  let edge_prob = Hashtbl.create 32 in
  Flowgraph.iter_blocks
    (fun b ->
      match b.Flowgraph.term with
      | Insn.Halt -> ()
      | Insn.Jump l -> Hashtbl.replace edge_prob (b.Flowgraph.label, l) 1.0
      | Insn.Branch { cond; ifso; ifnot; _ } ->
          let p =
            branch_probability g ~headers b.Flowgraph.label ~ifso ~ifnot ~cond
          in
          if ifso = ifnot then
            Hashtbl.replace edge_prob (b.Flowgraph.label, ifso) 1.0
          else begin
            Hashtbl.replace edge_prob (b.Flowgraph.label, ifso) p;
            Hashtbl.replace edge_prob (b.Flowgraph.label, ifnot) (1. -. p)
          end)
    g;
  (* Damped power iteration on  freq(b) = entry(b) + damping * sum_pred
     freq(p) * prob(p->b).  The damping bounds loop gains away from 1 so
     the iteration converges even for irreducible cycles; relative
     frequencies (what the objective needs) are preserved. *)
  let freq = Hashtbl.create 16 in
  Flowgraph.iter_blocks (fun b -> Hashtbl.replace freq b.Flowgraph.label 0.) g;
  let entry_label = (Flowgraph.entry g).Flowgraph.label in
  let preds = Flowgraph.predecessors g in
  for _ = 1 to iterations do
    Flowgraph.iter_blocks
      (fun b ->
        let label = b.Flowgraph.label in
        let inflow =
          List.fold_left
            (fun acc pred ->
              let p =
                Option.value ~default:0.
                  (Hashtbl.find_opt edge_prob (pred, label))
              in
              acc +. (damping *. p *. Hashtbl.find freq pred))
            0.
            (Option.value ~default:[] (Hashtbl.find_opt preds label))
        in
        let base = if label = entry_label then 1.0 else 0.0 in
        Hashtbl.replace freq label (base +. inflow))
      g
  done;
  { block_freq = freq; edge_prob }

let block_frequency t label =
  Option.value ~default:0. (Hashtbl.find_opt t.block_freq label)

(* Frequency of a program point = frequency of its block. *)
let point_frequency t (p : Flowgraph.point) = block_frequency t p.Flowgraph.block

let edge_probability t ~src ~dst =
  Option.value ~default:0. (Hashtbl.find_opt t.edge_prob (src, dst))

let pp ppf t =
  let entries =
    Hashtbl.fold (fun label f acc -> (label, f) :: acc) t.block_freq []
    |> List.sort compare
  in
  List.iter (fun (l, f) -> Fmt.pf ppf "%s: %.4f@." l f) entries
