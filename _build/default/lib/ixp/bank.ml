(* IXP1200 register banks as seen from one micro-engine thread (paper
   Figure 1).

   Six physical register banks plus the scratch memory M, which the ILP
   model treats as a seventh (memory-backed) bank:

     A, B     general-purpose banks feeding the ALU;
     L        SRAM read-transfer bank (destination of SRAM/scratch loads);
     S        SRAM write-transfer bank (source of SRAM/scratch stores);
     LD       SDRAM read-transfer bank;
     SD       SDRAM write-transfer bank;
     M        on-chip scratch memory used as spill space.

   Datapaths (paper §1): the ALU reads from {A, B, L, LD} with at most one
   operand from each of A, B, and L∪LD; it writes to {A, B, S, SD}.  There
   is no path between registers of the same transfer bank, and values in
   S/SD can only be recovered through memory. *)

type t =
  | A | B | L | LD | S | SD | M
  | C (* virtual constant bank (paper §12 rematerialization): unlimited
         capacity, holds constants only; a move from C is a load-immediate
         and a move to C discards the register copy *)

let all = [ A; B; L; LD; S; SD; M; C ]

(* The paper's AMPL sets: XBank = transfer banks, GBank = {A, B, M}. *)
let xbanks = [ L; LD; S; SD ]
let gbanks = [ A; B; M ]

let is_transfer = function L | LD | S | SD -> true | A | B | M | C -> false
let is_read_transfer = function L | LD -> true | _ -> false
let is_write_transfer = function S | SD -> true | _ -> false

let to_string = function
  | A -> "A"
  | B -> "B"
  | L -> "L"
  | LD -> "LD"
  | S -> "S"
  | SD -> "SD"
  | M -> "M"
  | C -> "C"

let of_string = function
  | "A" -> A
  | "B" -> B
  | "L" -> L
  | "LD" -> LD
  | "S" -> S
  | "SD" -> SD
  | "M" -> M
  | "C" -> C
  | s -> invalid_arg ("Bank.of_string: " ^ s)

let pp ppf b = Fmt.string ppf (to_string b)

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b

(* Physical capacity of each bank per thread.  A and B have 16 GPRs each;
   transfer banks have 8 registers (XRegs = 0..7 in the paper §9); scratch
   is memory and effectively unbounded for allocation purposes. *)
let capacity = function
  | A | B -> 16
  | L | LD | S | SD -> 8
  | M | C -> max_int

(* K-constraint capacity used by the ILP model: one A register is held in
   reserve to break cycles in parallel copies during optimistic coalescing
   (paper §6: "Before_{p,v,A} <= 15"). *)
let k_capacity = function A -> 15 | b -> capacity b

(* ALU operand sources and result destinations. *)
let alu_inputs = [ A; B; L; LD ]
let alu_outputs = [ A; B; S; SD ]

let can_feed_alu b = List.mem b alu_inputs
let can_receive_alu b = List.mem b alu_outputs

(* Legality of a direct (single register-register move) transfer from
   [src] to [dst].  A move is an ALU identity operation, so the source
   must be an ALU input and the destination an ALU output.  Moves within
   the same transfer bank are impossible (no datapath).  Moves touching M
   are memory operations and are considered separately (they are legal in
   the ILP model's sense but expand to scratch reads/writes). *)
let direct_move_ok ~src ~dst =
  match (src, dst) with
  | M, _ | _, M | C, _ | _, C -> false
  | s, d ->
      (* A->A and B->B register moves are ordinary ALU passthroughs; only
         the transfer banks lack an intra-bank path (and they are already
         excluded: the read side cannot be an ALU destination and the
         write side cannot be an ALU source) *)
      can_feed_alu s && can_receive_alu d


(* Cost model for the ILP objective (paper §7): a move between two
   register banks costs [mv]; moves through scratch memory add a store
   and/or a load.

     A/B/L  -> M : mv + st        (value staged through S, then stored)
     M -> A/B/L  : mv + ld        (loaded into L, then moved)
     M -> L      : ld             (loads land in L directly)
     ...

   The paper only spells out the A-bank rows of the objective; we apply
   the same recipe uniformly: count one [mv] for the register-register
   part and add [st]/[ld] whenever scratch memory is crossed. *)
type cost_params = { mv : float; ld : float; st : float; bias : float }

let default_costs = { mv = 1.0; ld = 200.0; st = 200.0; bias = 1.01 }

let move_cost ?(params = default_costs) ~src ~dst () =
  let { mv; ld; st; bias } = params in
  let base =
    match (src, dst) with
    | s, d when equal s d -> 0.0
    | C, _ -> mv (* immediate load; value-specific cost applied by the
                    model, which knows the constant *)
    | _, C -> 0.0 (* discarding a register copy of a constant is free *)
    | M, L -> ld (* scratch load lands directly in L *)
    | M, _ -> mv +. ld (* load into L, then move onward *)
    | S, M | SD, M -> st (* already on the write side; just store *)
    | _, M -> mv +. st (* stage through S, then store *)
    | _, _ -> mv
  in
  (* Small bias away from B keeps the solver from dithering between the
     symmetric A and B banks (paper §7). *)
  if equal src B || equal dst B then base *. bias else base

(* Banks a value can move to directly (one instruction, no memory). *)
let direct_successors src =
  List.filter (fun dst -> direct_move_ok ~src ~dst) all

(* Transitions the ILP's Move variables may take in one step: the direct
   ALU datapaths, stores into scratch (staged through S when necessary),
   and reloads out of scratch (landing in L, optionally moved onward to a
   GPR in the same modelled move).  A value in S/SD can only escape
   through memory; SD is not reachable from scratch in one step. *)
let move_legal ~src ~dst =
  equal src dst
  || direct_move_ok ~src ~dst
  || (equal dst M && not (equal src M || equal src C))
  || (equal src M && List.mem dst [ L; A; B ])
  (* constants: loads go to the GPRs; discards come from anywhere the
     constant was copied to *)
  || (equal src C && List.mem dst [ A; B ])
  || (equal dst C && List.mem src [ A; B ])

let legal_moves_from src = List.filter (fun dst -> move_legal ~src ~dst) all
