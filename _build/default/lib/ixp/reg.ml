(* Physical registers: a bank plus a register number within the bank.
   For the scratch "bank" M the number is a spill-slot index. *)

type t = { bank : Bank.t; num : int }

let make bank num =
  let cap = Bank.capacity bank in
  if num < 0 || (cap <> max_int && num >= cap) then
    invalid_arg
      (Printf.sprintf "Reg.make: %s[%d] out of range" (Bank.to_string bank) num);
  { bank; num }

let bank t = t.bank
let num t = t.num

let equal a b = Bank.equal a.bank b.bank && a.num = b.num

let compare a b =
  match Bank.compare a.bank b.bank with 0 -> Int.compare a.num b.num | c -> c

let to_string t = Printf.sprintf "%s%d" (Bank.to_string t.bank) t.num
let pp ppf t = Fmt.string ppf (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
