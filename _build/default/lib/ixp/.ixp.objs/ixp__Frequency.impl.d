lib/ixp/frequency.ml: Flowgraph Fmt Hashtbl Insn List Option
