lib/ixp/flowgraph.ml: Array Diag Fmt Hashtbl Insn Int List Map Option Printf String Support
