lib/ixp/simulator.ml: Array Bank Flowgraph Fmt Fun Insn Memory Printf Reg Support Vec
