lib/ixp/bank.ml: Fmt List Stdlib
