lib/ixp/checker.ml: Array Bank Flowgraph Fmt Insn List Reg Support
