lib/ixp/liveness.ml: Array Flowgraph Hashtbl Ident Insn List Option Support
