lib/ixp/reg.ml: Bank Fmt Int Map Printf Set
