lib/ixp/asm.ml: Array Bank Buffer Flowgraph Insn Printf Reg String
