lib/ixp/insn.ml: Array Bank Fmt
