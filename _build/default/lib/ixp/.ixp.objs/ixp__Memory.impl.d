lib/ixp/memory.ml: Array Insn Printf
