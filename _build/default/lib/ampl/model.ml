(* AMPL-style modeling layer over the LP substrate.

   The "model" half of the paper's AMPL setup (Figure 2): indexed families
   of 0-1 variables (e.g.  [var Move {Exists, Banks, Banks} binary]),
   linear expressions summed over datasets, and named constraint
   templates.  Instantiation produces an [Lp.Problem.t]; solutions are
   read back through the same symbolic names.

   Referencing a family at an index outside its declared index set is an
   error: this strictness catches model-generation bugs early, exactly the
   discipline AMPL enforces. *)

open Support

type varref = { family : string; index : Dataset.tuple }

let pp_varref ppf { family; index } =
  Fmt.pf ppf "%s[%a]" family
    Fmt.(list ~sep:(any ",") Dataset.pp_atom)
    index

(* Linear expressions: constant + weighted variable references. *)
type linexpr = { const : float; terms : (float * varref) list }

let zero = { const = 0.; terms = [] }
let const c = { const = c; terms = [] }
let v ?(coef = 1.0) family index = { const = 0.; terms = [ (coef, { family; index }) ] }

let add a b = { const = a.const +. b.const; terms = a.terms @ b.terms }
let sub a b =
  {
    const = a.const -. b.const;
    terms = a.terms @ List.map (fun (c, r) -> (-.c, r)) b.terms;
  }

let scale k e =
  { const = k *. e.const; terms = List.map (fun (c, r) -> (k *. c, r)) e.terms }

let sum exprs = List.fold_left add zero exprs

let sum_over ds f = Dataset.fold (fun tup acc -> add (f tup) acc) ds zero

type family = {
  fam_name : string;
  index_set : Dataset.t;
  binary : bool;
  lo : float;
  hi : float;
  (* Problem variables are created lazily on first reference. *)
  vars : (Dataset.tuple, int) Hashtbl.t;
}

type constr = { con_name : string; expr : linexpr; sense : Lp.Problem.sense; rhs : float }

type t = {
  mutable families : family list; (* newest first *)
  fam_index : (string, family) Hashtbl.t;
  mutable constraints : constr list; (* newest first *)
  mutable objective : linexpr;
  mutable n_constraints : int;
}

let create () =
  {
    families = [];
    fam_index = Hashtbl.create 16;
    constraints = [];
    objective = zero;
    n_constraints = 0;
  }

let declare_binary_family t name ~index =
  if Hashtbl.mem t.fam_index name then
    Diag.ice "Ampl: duplicate variable family %s" name;
  let fam =
    {
      fam_name = name;
      index_set = index;
      binary = true;
      lo = 0.;
      hi = 1.;
      vars = Hashtbl.create (max 16 (Dataset.size index));
    }
  in
  t.families <- fam :: t.families;
  Hashtbl.replace t.fam_index name fam

let declare_continuous_family t name ~index ~lo ~hi =
  if Hashtbl.mem t.fam_index name then
    Diag.ice "Ampl: duplicate variable family %s" name;
  let fam =
    {
      fam_name = name;
      index_set = index;
      binary = false;
      lo;
      hi;
      vars = Hashtbl.create (max 16 (Dataset.size index));
    }
  in
  t.families <- fam :: t.families;
  Hashtbl.replace t.fam_index name fam

let family_exists t name = Hashtbl.mem t.fam_index name

let add_constraint t ~name expr sense rhs =
  t.constraints <- { con_name = name; expr; sense; rhs } :: t.constraints;
  t.n_constraints <- t.n_constraints + 1

(* Convenience: e1 <= e2 etc., folding constants onto the rhs. *)
let add_le t ~name e1 e2 =
  let d = sub e1 e2 in
  add_constraint t ~name { d with const = 0. } Lp.Problem.Le (-.d.const)

let add_ge t ~name e1 e2 =
  let d = sub e1 e2 in
  add_constraint t ~name { d with const = 0. } Lp.Problem.Ge (-.d.const)

let add_eq t ~name e1 e2 =
  let d = sub e1 e2 in
  add_constraint t ~name { d with const = 0. } Lp.Problem.Eq (-.d.const)

let add_to_objective t expr = t.objective <- add t.objective expr

(* ------------------------------------------------------------------ *)
(* Instantiation                                                       *)
(* ------------------------------------------------------------------ *)

type instance = {
  problem : Lp.Problem.t;
  model : t;
  lookup : (string * Dataset.tuple, int) Hashtbl.t;
}

let var_name_of_ref r =
  Fmt.str "%s[%a]" r.family
    Fmt.(list ~sep:(any ",") Dataset.pp_atom)
    r.index

let resolve t problem lookup r =
  let fam =
    match Hashtbl.find_opt t.fam_index r.family with
    | Some f -> f
    | None -> Diag.ice "Ampl: reference to undeclared family %s" r.family
  in
  if not (Dataset.mem fam.index_set r.index) then
    Diag.ice "Ampl: %a is outside the index set of %s" pp_varref r r.family;
  match Hashtbl.find_opt fam.vars r.index with
  | Some v -> v
  | None ->
      let var =
        if fam.binary then
          Lp.Problem.add_binary problem (var_name_of_ref r)
        else
          Lp.Problem.add_var problem ~lo:fam.lo ~hi:fam.hi (var_name_of_ref r)
      in
      Hashtbl.replace fam.vars r.index var;
      Hashtbl.replace lookup (r.family, r.index) var;
      var

let instantiate t =
  let problem = Lp.Problem.create () in
  let lookup = Hashtbl.create 1024 in
  (* Objective first so objective variables get low indices. *)
  List.iter
    (fun (c, r) ->
      let var = resolve t problem lookup r in
      Lp.Problem.set_obj problem var
        (c +. Lp.Problem.var_obj problem var))
    t.objective.terms;
  List.iter
    (fun con ->
      let terms =
        List.map (fun (c, r) -> (resolve t problem lookup r, c)) con.expr.terms
      in
      Lp.Problem.add_row problem ~name:con.con_name con.sense
        (con.rhs -. con.expr.const)
        terms)
    (List.rev t.constraints);
  { problem; model = t; lookup }

(* Read back the value of a family member from a solution vector.
   Members that were never referenced by any constraint or objective have
   no LP variable; they are reported as 0 (they were unconstrained and
   cost nothing, so 0 is a valid completion for our 0-1 models). *)
let value inst solution family index =
  match Hashtbl.find_opt inst.lookup (family, index) with
  | Some var -> solution.(var)
  | None -> 0.

let is_one inst solution family index =
  value inst solution family index > 0.5

(* Iterate over the members of a family that are 1 in the solution. *)
let iter_ones inst solution family f =
  match Hashtbl.find_opt inst.model.fam_index family with
  | None -> Diag.ice "Ampl: iter_ones on undeclared family %s" family
  | Some fam ->
      Hashtbl.iter
        (fun index var -> if solution.(var) > 0.5 then f index)
        fam.vars

type family_stats = { declared : int; instantiated : int }

let stats t name =
  match Hashtbl.find_opt t.fam_index name with
  | None -> { declared = 0; instantiated = 0 }
  | Some fam ->
      {
        declared = Dataset.size fam.index_set;
        instantiated = Hashtbl.length fam.vars;
      }

(* AMPL .mod-style summary rendering for documentation and debugging. *)
let pp_summary ppf t =
  Fmt.pf ppf "model with %d families, %d constraints@."
    (List.length t.families) t.n_constraints;
  List.iter
    (fun fam ->
      Fmt.pf ppf "  var %s {%d tuples}%s;@." fam.fam_name
        (Dataset.size fam.index_set)
        (if fam.binary then " binary" else ""))
    (List.rev t.families)
