(* AMPL-style data sets: finite sets of tuples of atoms.

   The paper expresses its ILP model as an AMPL model instantiated with
   per-program data (sets like Exists, Copy, DefL4, UseS4 -- see Figure 3).
   This module is the "data" half: ordered, deduplicated tuple sets with
   the constructive operations needed to write the model's quantifiers. *)

type atom = S of string | I of int

let atom_compare a b =
  match (a, b) with
  | S x, S y -> String.compare x y
  | I x, I y -> Int.compare x y
  | S _, I _ -> -1
  | I _, S _ -> 1

let pp_atom ppf = function
  | S s -> Fmt.string ppf s
  | I i -> Fmt.int ppf i

type tuple = atom list

let tuple_compare = List.compare atom_compare

let pp_tuple ppf t =
  Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ",") pp_atom) t

module TSet = Set.Make (struct
  type t = tuple

  let compare = tuple_compare
end)

type t = { arity : int; elems : TSet.t }

let arity t = t.arity
let size t = TSet.cardinal t.elems
let is_empty t = TSet.is_empty t.elems

let empty arity = { arity; elems = TSet.empty }

let check_arity t tup =
  if List.length tup <> t.arity then
    invalid_arg
      (Fmt.str "Dataset: tuple %a has arity %d, set expects %d" pp_tuple tup
         (List.length tup) t.arity)

let add t tup =
  check_arity t tup;
  { t with elems = TSet.add tup t.elems }

let of_list arity tuples = List.fold_left add (empty arity) tuples

(* Convenience constructors for atom kinds commonly used. *)
let of_strings ss = of_list 1 (List.map (fun s -> [ S s ]) ss)
let of_ints is = of_list 1 (List.map (fun i -> [ I i ]) is)

let mem t tup = TSet.mem tup t.elems
let iter f t = TSet.iter f t.elems
let fold f t acc = TSet.fold f t.elems acc
let elements t = TSet.elements t.elems
let filter p t = { t with elems = TSet.filter p t.elems }

let union a b =
  if a.arity <> b.arity then invalid_arg "Dataset.union: arity mismatch";
  { a with elems = TSet.union a.elems b.elems }

let diff a b =
  if a.arity <> b.arity then invalid_arg "Dataset.diff: arity mismatch";
  { a with elems = TSet.diff a.elems b.elems }

let inter a b =
  if a.arity <> b.arity then invalid_arg "Dataset.inter: arity mismatch";
  { a with elems = TSet.inter a.elems b.elems }

(* Cartesian product. *)
let product a b =
  let elems =
    TSet.fold
      (fun ta acc ->
        TSet.fold (fun tb acc -> TSet.add (ta @ tb) acc) b.elems acc)
      a.elems TSet.empty
  in
  { arity = a.arity + b.arity; elems }

(* Keep the listed 0-based columns, in the given order. *)
let project cols t =
  let arity' = List.length cols in
  let elems =
    TSet.fold
      (fun tup acc ->
        let arr = Array.of_list tup in
        TSet.add (List.map (fun c -> arr.(c)) cols) acc)
      t.elems TSet.empty
  in
  { arity = arity'; elems }

let map ~arity f t =
  let elems =
    TSet.fold (fun tup acc -> TSet.add (f tup) acc) t.elems TSet.empty
  in
  TSet.iter
    (fun tup ->
      if List.length tup <> arity then
        invalid_arg "Dataset.map: function produced wrong arity")
    elems;
  { arity; elems }

let exists p t = TSet.exists p t.elems

let pp ppf t =
  Fmt.pf ppf "{@[%a@]}" Fmt.(list ~sep:sp pp_tuple) (elements t)

(* AMPL .dat-style rendering, as in the paper's Figure 3. *)
let pp_dat ~name ppf t =
  Fmt.pf ppf "set %s := %a;" name Fmt.(list ~sep:sp pp_tuple) (elements t)
