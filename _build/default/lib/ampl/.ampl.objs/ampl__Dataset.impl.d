lib/ampl/dataset.ml: Array Fmt Int List Set String
