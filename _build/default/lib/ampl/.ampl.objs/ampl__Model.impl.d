lib/ampl/model.ml: Array Dataset Diag Fmt Hashtbl List Lp Support
