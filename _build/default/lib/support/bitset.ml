(* Fixed-universe bitsets for dataflow analysis.

   The universe size is fixed at creation; elements are small ints
   (typically dense indices of temporaries or program points). *)

type t = { bits : Bytes.t; width : int }

let bpw = 8 (* bits per byte; Bytes-based keeps it simple and portable *)

let create width =
  { bits = Bytes.make ((width + bpw - 1) / bpw) '\000'; width }

let width t = t.width

let check t i =
  if i < 0 || i >= t.width then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  Char.code (Bytes.get t.bits (i / bpw)) land (1 lsl (i mod bpw)) <> 0

let add t i =
  check t i;
  let byte = i / bpw in
  Bytes.set t.bits byte
    (Char.chr (Char.code (Bytes.get t.bits byte) lor (1 lsl (i mod bpw))))

let remove t i =
  check t i;
  let byte = i / bpw in
  Bytes.set t.bits byte
    (Char.chr
       (Char.code (Bytes.get t.bits byte) land lnot (1 lsl (i mod bpw)) land 0xff))

let copy t = { bits = Bytes.copy t.bits; width = t.width }

let same_universe a b =
  if a.width <> b.width then invalid_arg "Bitset: universe mismatch"

(* dst <- dst U src; returns true if dst changed. *)
let union_into ~dst ~src =
  same_universe dst src;
  let changed = ref false in
  for i = 0 to Bytes.length dst.bits - 1 do
    let d = Char.code (Bytes.get dst.bits i) in
    let s = Char.code (Bytes.get src.bits i) in
    let u = d lor s in
    if u <> d then begin
      changed := true;
      Bytes.set dst.bits i (Char.chr u)
    end
  done;
  !changed

let diff_into ~dst ~src =
  same_universe dst src;
  for i = 0 to Bytes.length dst.bits - 1 do
    let d = Char.code (Bytes.get dst.bits i) in
    let s = Char.code (Bytes.get src.bits i) in
    Bytes.set dst.bits i (Char.chr (d land lnot s land 0xff))
  done

let equal a b =
  same_universe a b;
  Bytes.equal a.bits b.bits

let iter f t =
  for i = 0 to t.width - 1 do
    if mem t i then f i
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let cardinal t = fold (fun _ n -> n + 1) t 0

let is_empty t =
  let rec go i =
    i >= Bytes.length t.bits || (Bytes.get t.bits i = '\000' && go (i + 1))
  in
  go 0
