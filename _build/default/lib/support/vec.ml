(* Growable arrays (OCaml 5.1 predates stdlib Dynarray). *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let make n x = { data = Array.make n x; len = n }

let with_capacity n = { data = (if n = 0 then [||] else Array.make n (Obj.magic 0)); len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let unsafe_get t i = Array.unsafe_get t.data i

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- x

let ensure_capacity t n =
  if Array.length t.data < n then begin
    let cap = max 8 (max n (2 * Array.length t.data)) in
    let data = Array.make cap (Obj.magic 0) in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  ensure_capacity t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Vec.pop";
  t.len <- t.len - 1;
  let x = t.data.(t.len) in
  t.data.(t.len) <- Obj.magic 0;
  x

let top t =
  if t.len = 0 then invalid_arg "Vec.top";
  t.data.(t.len - 1)

let clear t =
  for i = 0 to t.len - 1 do
    t.data.(i) <- Obj.magic 0
  done;
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (Array.unsafe_get t.data i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc (Array.unsafe_get t.data i)
  done;
  !acc

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(i) :: acc) in
  go (t.len - 1) []

let to_array t = Array.sub t.data 0 t.len

let of_list xs =
  let t = create () in
  List.iter (push t) xs;
  t

let of_array a = { data = Array.copy a; len = Array.length a }

let map f t =
  { data = Array.init t.len (fun i -> f t.data.(i)); len = t.len }

let find_opt p t =
  let rec go i =
    if i >= t.len then None
    else if p t.data.(i) then Some t.data.(i)
    else go (i + 1)
  in
  go 0

let append dst src = iter (push dst) src

let sort cmp t =
  let a = to_array t in
  Array.sort cmp a;
  Array.blit a 0 t.data 0 t.len
