(* Interned identifiers.

   Every name that flows through the compiler (source variables, CPS
   temporaries, function labels, layout names, ...) is an interned symbol:
   a unique integer stamp paired with a human-readable base name.  Interning
   gives O(1) comparison and hashing, and fresh stamps give cheap
   alpha-renaming (SSA, SSU cloning, inlining). *)

type t = { stamp : int; base : string }

let counter = ref 0

let fresh base =
  incr counter;
  { stamp = !counter; base }

(* [derive t suffix] makes a fresh ident whose printed base records its
   provenance, e.g. SSU clones of [x] print as [x.c1], [x.c2], ... *)
let derive t suffix = fresh (t.base ^ suffix)

let clone t = derive t "'"
let base t = t.base
let stamp t = t.stamp
let compare a b = Int.compare a.stamp b.stamp
let equal a b = a.stamp = b.stamp
let hash a = a.stamp

let name t = Printf.sprintf "%s_%d" t.base t.stamp
let pp ppf t = Fmt.pf ppf "%s_%d" t.base t.stamp
let pp_base ppf t = Fmt.string ppf t.base
let to_string = name

(* Deterministic table reset, used by tests so that golden outputs are
   stable regardless of what ran before. *)
let reset () = counter := 0

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
