lib/support/srcloc.ml: Fmt
