lib/support/diag.ml: Fmt Srcloc
