lib/support/ident.ml: Fmt Hashtbl Int Map Printf Set
