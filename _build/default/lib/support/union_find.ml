(* Union-find with path compression and union by rank.

   Used by the A/B coloring phase (coalescing classes) and by the SSU pass
   (clone families). *)

type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t i j =
  let ri = find t i and rj = find t j in
  if ri = rj then ri
  else if t.rank.(ri) < t.rank.(rj) then begin
    t.parent.(ri) <- rj;
    rj
  end
  else if t.rank.(ri) > t.rank.(rj) then begin
    t.parent.(rj) <- ri;
    ri
  end
  else begin
    t.parent.(rj) <- ri;
    t.rank.(ri) <- t.rank.(ri) + 1;
    ri
  end

let equiv t i j = find t i = find t j

(* All classes, as a list of members per representative. *)
let classes t =
  let tbl = Hashtbl.create 16 in
  Array.iteri
    (fun i _ ->
      let r = find t i in
      Hashtbl.replace tbl r (i :: (Option.value ~default:[] (Hashtbl.find_opt tbl r))))
    t.parent;
  Hashtbl.fold (fun _ members acc -> List.rev members :: acc) tbl []
