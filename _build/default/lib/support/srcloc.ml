(* Source locations: a span of positions inside a named compilation unit. *)

type pos = { line : int; col : int; offset : int }

type t = { file : string; start_pos : pos; end_pos : pos }

let start_of_file file =
  { line = 1; col = 1; offset = 0 }
  |> fun p -> { file; start_pos = p; end_pos = p }

let dummy = { file = "<none>"; start_pos = { line = 0; col = 0; offset = 0 };
              end_pos = { line = 0; col = 0; offset = 0 } }

let make ~file ~start_pos ~end_pos = { file; start_pos; end_pos }

let merge a b =
  if a == dummy then b
  else if b == dummy then a
  else { a with end_pos = b.end_pos }

let file t = t.file
let start_line t = t.start_pos.line
let start_col t = t.start_pos.col

let pp ppf t =
  if t == dummy then Fmt.string ppf "<unknown location>"
  else if t.start_pos.line = t.end_pos.line then
    Fmt.pf ppf "%s:%d.%d-%d" t.file t.start_pos.line t.start_pos.col
      t.end_pos.col
  else
    Fmt.pf ppf "%s:%d.%d-%d.%d" t.file t.start_pos.line t.start_pos.col
      t.end_pos.line t.end_pos.col

let to_string t = Fmt.str "%a" pp t
