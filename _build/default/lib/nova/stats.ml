(* Static program statistics, as tabulated in the paper's Figure 5:
   line count, number of layout specifications, and occurrence counts of
   pack / unpack / raise / handle. *)

open Ast

type t = {
  lines : int; (* wc-style: includes whitespace and comments *)
  layout_specs : int;
  packs : int;
  unpacks : int;
  raises : int;
  handles : int;
  functions : int;
  consts : int;
}

let count_lines src =
  String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 src
  + if src <> "" && src.[String.length src - 1] <> '\n' then 1 else 0

let rec expr_counts e (packs, unpacks, raises, handles) =
  let fold es acc = List.fold_left (fun acc e -> expr_counts e acc) acc es in
  match e with
  | Int _ | Bool _ | Var _ | Unit _ | CsrRead _ | CtxArb _ ->
      (packs, unpacks, raises, handles)
  | Binop (_, a, b, _) | Seq (a, b, _) | While (a, b, _)
  | MemWrite (_, a, b, _) | BitTestSet (a, b, _) | TfifoWrite (a, b, _) ->
      fold [ a; b ] (packs, unpacks, raises, handles)
  | Unop (_, a, _) | Select (a, _, _) | Proj (a, _, _) | Assign (_, a, _)
  | MemRead (_, a, _, _) | Hash (a, _) | CsrWrite (_, a, _)
  | RfifoRead (a, _, _) ->
      expr_counts a (packs, unpacks, raises, handles)
  | Tuple (es, _) -> fold es (packs, unpacks, raises, handles)
  | Record (fs, _) -> fold (List.map snd fs) (packs, unpacks, raises, handles)
  | If (a, b, c, _) -> fold [ a; b; c ] (packs, unpacks, raises, handles)
  | Call (_, args, _) ->
      fold
        (List.map (function Apos e | Anamed (_, e) -> e) args)
        (packs, unpacks, raises, handles)
  | Let (_, _, a, b, _) | Vardecl (_, _, a, b, _) ->
      fold [ a; b ] (packs, unpacks, raises, handles)
  | Unpack (_, a, _) -> expr_counts a (packs, unpacks + 1, raises, handles)
  | Pack (_, a, _) -> expr_counts a (packs + 1, unpacks, raises, handles)
  | Raise (_, args, _) ->
      fold
        (List.map (function Apos e | Anamed (_, e) -> e) args)
        (packs, unpacks, raises + 1, handles)
  | Try (body, hs, _) ->
      let acc = expr_counts body (packs, unpacks, raises, handles + List.length hs) in
      List.fold_left (fun acc h -> expr_counts h.hbody acc) acc hs

let of_program ~source (prog : program) =
  let packs, unpacks, raises, handles =
    List.fold_left
      (fun acc d ->
        match d with
        | Dfun f -> expr_counts f.fn_body acc
        | Dconst (_, e, _) -> expr_counts e acc
        | Dlayout _ -> acc)
      (0, 0, 0, 0) prog.decls
  in
  let layout_specs =
    List.length
      (List.filter (function Dlayout _ -> true | _ -> false) prog.decls)
  in
  {
    lines = count_lines source;
    layout_specs;
    packs;
    unpacks;
    raises;
    handles;
    functions =
      List.length (List.filter (function Dfun _ -> true | _ -> false) prog.decls);
    consts =
      List.length (List.filter (function Dconst _ -> true | _ -> false) prog.decls);
  }

let pp ppf t =
  Fmt.pf ppf
    "lines=%d layouts=%d pack=%d unpack=%d raise=%d handle=%d funs=%d consts=%d"
    t.lines t.layout_specs t.packs t.unpacks t.raises t.handles t.functions
    t.consts
