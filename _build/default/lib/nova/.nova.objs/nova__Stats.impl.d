lib/nova/stats.ml: Ast Fmt List String
