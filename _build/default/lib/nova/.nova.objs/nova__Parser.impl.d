lib/nova/parser.ml: Array Ast Diag Lexer List Support
