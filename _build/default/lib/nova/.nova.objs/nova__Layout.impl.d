lib/nova/layout.ml: Ast Diag Fmt Hashtbl List Support
