lib/nova/tast.ml: Ast Ident Layout Srcloc Support Types
