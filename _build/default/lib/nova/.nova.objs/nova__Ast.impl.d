lib/nova/ast.ml: Srcloc Support
