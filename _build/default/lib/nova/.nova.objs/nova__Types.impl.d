lib/nova/types.ml: Fmt Layout List
