lib/nova/lexer.ml: Array Buffer Diag List Printf Srcloc String Support
