lib/nova/typecheck.ml: Ast Diag Hashtbl Ident Layout List Option String Support Tast Types
