(* Layout resolution and bit-level access planning (paper §3.2).

   A layout statically describes the arrangement of bit-fields within a
   byte stream (network order: bit offset 0 is the most significant bit of
   the first 32-bit word).  Overlays provide alternative views of the same
   bit range; `##` concatenates layouts; `{n}` is an anonymous gap.

   [unpack] and [pack] compile to shift/mask plans over the packed word
   tuple; the CPS optimizer later deletes the extractions whose results
   are never used (paper §4.4). *)

open Support
open Ast

type t =
  | Leaf of int (* named bit-field width (name kept in Struct) *)
  | Gap of int
  | Struct of (string * t) list
  | Overlay of (string * t) list (* alternatives covering one range *)
  | Seq of t list

type env = (string, t) Hashtbl.t

let create_env () : env = Hashtbl.create 16

let rec bit_size = function
  | Leaf w | Gap w -> w
  | Struct fields -> List.fold_left (fun a (_, t) -> a + bit_size t) 0 fields
  | Overlay [] -> 0
  | Overlay ((_, t) :: _) -> bit_size t
  | Seq ts -> List.fold_left (fun a t -> a + bit_size t) 0 ts

let word_size t = (bit_size t + 31) / 32

(* Resolve a surface layout expression against the named-layout
   environment, checking overlay-alternative sizes agree and that leaf
   fields fit in a machine word. *)
let rec resolve (env : env) (l : layout_expr) : t =
  match l with
  | Lname (name, loc) -> (
      match Hashtbl.find_opt env name with
      | Some t -> t
      | None -> Diag.error ~loc "unknown layout '%s'" name)
  | Lgap (n, loc) ->
      if n <= 0 then Diag.error ~loc "gap width must be positive";
      Gap n
  | Lconcat (a, b) -> (
      let ra = resolve env a and rb = resolve env b in
      match rb with
      | Seq bs -> Seq (ra :: bs)
      | _ -> Seq [ ra; rb ])
  | Lfields (fields, loc) ->
      let seen = Hashtbl.create 8 in
      Struct
        (List.map
           (fun f ->
             if Hashtbl.mem seen f.fname then
               Diag.error ~loc:f.floc "duplicate field '%s'" f.fname;
             Hashtbl.replace seen f.fname ();
             (f.fname, resolve_field_type env f.floc f.fty))
           fields)
      |> fun t ->
      ignore loc;
      t

and resolve_field_type env loc = function
  | Fbits w ->
      if w <= 0 || w > 32 then
        Diag.error ~loc "bit-field width %d out of range 1..32" w;
      Leaf w
  | Fsub l -> resolve env l
  | Foverlay alts ->
      let resolved =
        List.map (fun (n, ft) -> (n, resolve_field_type env loc ft)) alts
      in
      (match resolved with
      | [] -> Diag.error ~loc "empty overlay"
      | (_, first) :: rest ->
          let sz = bit_size first in
          List.iter
            (fun (n, t) ->
              if bit_size t <> sz then
                Diag.error ~loc
                  "overlay alternative '%s' has size %d, expected %d" n
                  (bit_size t) sz)
            rest);
      Overlay resolved

let define env name t = Hashtbl.replace env name t

(* ------------------------------------------------------------------ *)
(* Leaves                                                              *)
(* ------------------------------------------------------------------ *)

(* Every bit-field reachable in the layout, including all overlay
   alternatives, with its absolute bit offset.  Paths name the access
   chain, e.g. ["src_address"; "a2"] or ["verpri"; "parts"; "version"]. *)
type leaf = { path : string list; offset : int; width : int }

let leaves (t : t) : leaf list =
  let acc = ref [] in
  let rec go prefix offset = function
    | Leaf w ->
        acc := { path = List.rev prefix; offset; width = w } :: !acc;
        offset + w
    | Gap w -> offset + w
    | Struct fields ->
        List.fold_left
          (fun off (name, sub) -> go (name :: prefix) off sub)
          offset fields
    | Overlay alts ->
        let size =
          match alts with [] -> 0 | (_, first) :: _ -> bit_size first
        in
        List.iter (fun (name, sub) -> ignore (go (name :: prefix) offset sub)) alts;
        offset + size
    | Seq ts -> List.fold_left (fun off sub -> go prefix off sub) offset ts
  in
  ignore (go [] 0 t);
  List.rev !acc

(* Leaves of exactly one overlay alternative (pack's input view):
   the [choose] callback picks an alternative name for each overlay
   encountered (identified by its path). *)
let leaves_choosing (t : t) ~(choose : string list -> string option) :
    leaf list option =
  let acc = ref [] in
  let ok = ref true in
  let rec go prefix offset = function
    | Leaf w ->
        acc := { path = List.rev prefix; offset; width = w } :: !acc;
        offset + w
    | Gap w -> offset + w
    | Struct fields ->
        List.fold_left
          (fun off (name, sub) -> go (name :: prefix) off sub)
          offset fields
    | Overlay alts -> (
        let size =
          match alts with [] -> 0 | (_, first) :: _ -> bit_size first
        in
        match choose (List.rev prefix) with
        | None ->
            ok := false;
            offset + size
        | Some picked -> (
            match List.assoc_opt picked alts with
            | None ->
                ok := false;
                offset + size
            | Some sub ->
                ignore (go (picked :: prefix) offset sub);
                offset + size))
    | Seq ts -> List.fold_left (fun off sub -> go prefix off sub) offset ts
  in
  ignore (go [] 0 t);
  if !ok then Some (List.rev !acc) else None

(* Overlay positions within a layout: path of each overlay together with
   its alternatives' names. *)
let overlays (t : t) : (string list * string list) list =
  let acc = ref [] in
  let rec go prefix = function
    | Leaf _ | Gap _ -> ()
    | Struct fields -> List.iter (fun (n, sub) -> go (n :: prefix) sub) fields
    | Overlay alts ->
        acc := (List.rev prefix, List.map fst alts) :: !acc;
        List.iter (fun (n, sub) -> go (n :: prefix) sub) alts
    | Seq ts -> List.iter (go prefix) ts
  in
  go [] t;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Shift/mask plans                                                    *)
(* ------------------------------------------------------------------ *)

(* One piece of a field: take [width] bits located [shr] bits up from the
   LSB of packed word [word]; contribute them shifted left by [shl] into
   the result. *)
type piece = { word : int; shr : int; width : int; shl : int }

let mask_of_width w = if w >= 32 then 0xFFFFFFFF else (1 lsl w) - 1

(* Decompose the bit range [offset, offset+width) (MSB-first numbering)
   into per-word pieces. *)
let pieces ~offset ~width =
  let rec go offset width acc =
    if width = 0 then List.rev acc
    else begin
      let word = offset / 32 in
      let bit_in_word = offset mod 32 in
      let take = min width (32 - bit_in_word) in
      (* bits [bit_in_word, bit_in_word+take) of the word, MSB-first,
         i.e. shifted right by 32 - bit_in_word - take from the LSB end *)
      let shr = 32 - bit_in_word - take in
      let shl = width - take in
      go (offset + take) (width - take) ({ word; shr; width = take; shl } :: acc)
    end
  in
  go offset width []

(* Extract the field's value given an accessor for packed words. *)
let extract_value ~offset ~width ~get_word =
  List.fold_left
    (fun acc p ->
      let bits = (get_word p.word lsr p.shr) land mask_of_width p.width in
      acc lor (bits lsl p.shl))
    0
    (pieces ~offset ~width)

(* Insert [v] into the packed words via [get_word]/[set_word]. *)
let insert_value ~offset ~width ~get_word ~set_word v =
  List.iter
    (fun p ->
      let bits = (v lsr p.shl) land mask_of_width p.width in
      let cleared = get_word p.word land lnot (mask_of_width p.width lsl p.shr) in
      set_word p.word ((cleared lor (bits lsl p.shr)) land 0xFFFFFFFF))
    (pieces ~offset ~width)

let pp ppf t =
  let rec go ppf = function
    | Leaf w -> Fmt.pf ppf ":%d" w
    | Gap w -> Fmt.pf ppf "{%d}" w
    | Struct fields ->
        Fmt.pf ppf "{@[%a@]}"
          Fmt.(list ~sep:comma (fun ppf (n, t) -> Fmt.pf ppf "%s%a" n go t))
          fields
    | Overlay alts ->
        Fmt.pf ppf "overlay{@[%a@]}"
          Fmt.(
            list ~sep:(any " | ") (fun ppf (n, t) -> Fmt.pf ppf "%s%a" n go t))
          alts
    | Seq ts -> Fmt.pf ppf "%a" Fmt.(list ~sep:(any " ## ") go) ts
  in
  go ppf t
