(* Hand-written lexer for Nova. *)

open Support

type token =
  | INT of int
  | IDENT of string
  | STRING of string
  (* keywords *)
  | KW_layout | KW_overlay | KW_fun | KW_let | KW_var | KW_const
  | KW_if | KW_else | KW_while | KW_try | KW_handle | KW_raise
  | KW_pack | KW_unpack | KW_true | KW_false
  | KW_word | KW_bool | KW_unit | KW_packed | KW_unpacked | KW_exn
  | KW_sram | KW_sdram | KW_scratch | KW_hash | KW_bit_test_set
  | KW_csr | KW_rfifo | KW_tfifo | KW_ctx_arb
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI | COLON | DOT | BAR | HASHHASH | ARROW | LARROW
  | ASSIGN (* := *) | EQUALS (* = *)
  (* operators *)
  | PLUS | MINUS | STAR | AMP | CARET | BANG | TILDE
  | SHL | SHR | ASR_OP
  | EQEQ | NEQ | LT | LE | GT | GE | ULT | UGE
  | ANDAND | OROR
  | EOF

let keyword_table =
  [
    ("layout", KW_layout); ("overlay", KW_overlay); ("fun", KW_fun);
    ("let", KW_let); ("var", KW_var); ("const", KW_const); ("if", KW_if);
    ("else", KW_else); ("while", KW_while); ("try", KW_try);
    ("handle", KW_handle); ("raise", KW_raise); ("pack", KW_pack);
    ("unpack", KW_unpack); ("true", KW_true); ("false", KW_false);
    ("word", KW_word); ("bool", KW_bool); ("unit", KW_unit);
    ("packed", KW_packed); ("unpacked", KW_unpacked); ("exn", KW_exn);
    ("sram", KW_sram); ("sdram", KW_sdram); ("scratch", KW_scratch);
    ("hash", KW_hash); ("bit_test_set", KW_bit_test_set); ("csr", KW_csr);
    ("rfifo", KW_rfifo); ("tfifo", KW_tfifo); ("ctx_arb", KW_ctx_arb);
  ]

let token_to_string = function
  | INT i -> string_of_int i
  | IDENT s -> s
  | STRING s -> Printf.sprintf "%S" s
  | EOF -> "<eof>"
  | t -> (
      match List.find_opt (fun (_, t') -> t' = t) keyword_table with
      | Some (s, _) -> s
      | None -> (
          match t with
          | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
          | LBRACKET -> "[" | RBRACKET -> "]" | COMMA -> "," | SEMI -> ";"
          | COLON -> ":" | DOT -> "." | BAR -> "|" | HASHHASH -> "##"
          | ARROW -> "->" | LARROW -> "<-" | ASSIGN -> ":=" | EQUALS -> "="
          | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | AMP -> "&"
          | CARET -> "^" | BANG -> "!" | TILDE -> "~"
          | SHL -> "<<" | SHR -> ">>" | ASR_OP -> ">>>"
          | EQEQ -> "==" | NEQ -> "!=" | LT -> "<" | LE -> "<=" | GT -> ">"
          | GE -> ">=" | ULT -> "<u" | UGE -> ">=u"
          | ANDAND -> "&&" | OROR -> "||"
          | _ -> "<token>"))

type lexeme = { tok : token; loc : Srcloc.t }

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
}

let make_state ~file src = { src; file; pos = 0; line = 1; bol = 0 }

let current_pos st =
  { Srcloc.line = st.line; col = st.pos - st.bol + 1; offset = st.pos }

let error st fmt =
  let pos = current_pos st in
  let loc = Srcloc.make ~file:st.file ~start_pos:pos ~end_pos:pos in
  Diag.error ~loc fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None
let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
      advance st;
      advance st;
      let rec go () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | None, _ -> error st "unterminated block comment"
        | _ ->
            advance st;
            go ()
      in
      go ();
      skip_trivia st
  | _ -> ()

let lex_number st =
  let start = st.pos in
  if peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X') then begin
    advance st;
    advance st;
    while (match peek st with Some c -> is_hex c || c = '_' | None -> false) do
      advance st
    done;
    let text = String.sub st.src start (st.pos - start) in
    int_of_string (String.concat "" (String.split_on_char '_' text))
  end
  else begin
    while (match peek st with Some c -> is_digit c || c = '_' | None -> false) do
      advance st
    done;
    let text = String.sub st.src start (st.pos - start) in
    int_of_string (String.concat "" (String.split_on_char '_' text))
  end

let next_token st =
  skip_trivia st;
  let start_pos = current_pos st in
  let mk tok =
    let end_pos = current_pos st in
    { tok; loc = Srcloc.make ~file:st.file ~start_pos ~end_pos }
  in
  match peek st with
  | None -> mk EOF
  | Some c when is_digit c -> mk (INT (lex_number st))
  | Some c when is_ident_start c ->
      let start = st.pos in
      while (match peek st with Some c -> is_ident_char c | None -> false) do
        advance st
      done;
      let text = String.sub st.src start (st.pos - start) in
      mk
        (match List.assoc_opt text keyword_table with
        | Some kw -> kw
        | None -> IDENT text)
  | Some '"' ->
      advance st;
      let buf = Buffer.create 16 in
      let rec go () =
        match peek st with
        | Some '"' -> advance st
        | Some c ->
            Buffer.add_char buf c;
            advance st;
            go ()
        | None -> error st "unterminated string literal"
      in
      go ();
      mk (STRING (Buffer.contents buf))
  | Some c ->
      let two tok =
        advance st;
        advance st;
        mk tok
      in
      let one tok =
        advance st;
        mk tok
      in
      (match (c, peek2 st) with
      | '#', Some '#' -> two HASHHASH
      | '<', Some '-' -> two LARROW
      | '<', Some '<' -> two SHL
      | '<', Some '=' -> two LE
      | '<', Some 'u' when (st.pos + 2 >= String.length st.src)
                           || not (is_ident_char st.src.[st.pos + 2]) ->
          advance st;
          advance st;
          mk ULT
      | '>', Some '>' ->
          advance st;
          advance st;
          if peek st = Some '>' then begin
            advance st;
            mk ASR_OP
          end
          else mk SHR
      | '>', Some '=' ->
          advance st;
          advance st;
          if
            peek st = Some 'u'
            && (st.pos + 1 >= String.length st.src
               || not (is_ident_char st.src.[st.pos + 1]))
          then begin
            advance st;
            mk UGE
          end
          else mk GE
      | ':', Some '=' -> two ASSIGN
      | '=', Some '=' -> two EQEQ
      | '!', Some '=' -> two NEQ
      | '&', Some '&' -> two ANDAND
      | '|', Some '|' -> two OROR
      | '-', Some '>' -> two ARROW
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | '[', _ -> one LBRACKET
      | ']', _ -> one RBRACKET
      | ',', _ -> one COMMA
      | ';', _ -> one SEMI
      | ':', _ -> one COLON
      | '.', _ -> one DOT
      | '|', _ -> one BAR
      | '=', _ -> one EQUALS
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '&', _ -> one AMP
      | '^', _ -> one CARET
      | '!', _ -> one BANG
      | '~', _ -> one TILDE
      | '<', _ -> one LT
      | '>', _ -> one GT
      | _ -> error st "unexpected character %C" c)

(* Tokenize a whole source buffer. *)
let tokenize ~file src =
  let st = make_state ~file src in
  let acc = ref [] in
  let rec go () =
    let lx = next_token st in
    acc := lx :: !acc;
    if lx.tok <> EOF then go ()
  in
  go ();
  Array.of_list (List.rev !acc)
