(* Abstract syntax of Nova (paper §3).

   Nova is a lexically-scoped, strict, statically-typed, call-by-value
   language for IXP micro-engine code.  Relative to the paper we commit to
   a concrete grammar (the paper shows examples only); the README
   documents it.  Design constraints from the paper:

     - no recursive types, no heap, no stack: recursion only through tail
       calls; functions and exceptions may be passed as arguments but
       never returned or stored;
     - records/tuples are compile-time aggregates, flattened before CPS;
     - layouts/overlays describe packed byte streams; [pack]/[unpack]
       mediate between packed words and unpacked records;
     - direct syntax for the memory system and special hardware. *)

open Support

type loc = Srcloc.t

(* ------------------------------------------------------------------ *)
(* Layouts                                                             *)
(* ------------------------------------------------------------------ *)

(* Surface layout expressions; resolution and offset computation live in
   [Layout]. *)
type layout_expr =
  | Lname of string * loc (* reference to a named layout *)
  | Lgap of int * loc (* {n}: unnamed n-bit gap *)
  | Lfields of field list * loc (* {a : 8, b : lyt, c : overlay {...}} *)
  | Lconcat of layout_expr * layout_expr (* l1 ## l2 *)

and field = { fname : string; fty : field_type; floc : loc }

and field_type =
  | Fbits of int (* bit-field of the given width *)
  | Fsub of layout_expr (* nested layout *)
  | Foverlay of (string * field_type) list (* alternatives over one range *)

(* ------------------------------------------------------------------ *)
(* Types (surface syntax)                                              *)
(* ------------------------------------------------------------------ *)

type ty =
  | Tword of loc
  | Tbool of loc
  | Ttuple of ty list * loc
  | Trecord of (string * ty) list * loc
  | Tpacked of layout_expr * loc
  | Tunpacked of layout_expr * loc
  | Tfun of ty list * ty * loc (* fun(t1, ..., tn) : t *)
  | Texn of ty * loc (* exception carrying a payload of type t *)
  | Tunit of loc

let ty_loc = function
  | Tword l | Tbool l | Ttuple (_, l) | Trecord (_, l) | Tpacked (_, l)
  | Tunpacked (_, l) | Tfun (_, _, l) | Texn (_, l) | Tunit l ->
      l

(* ------------------------------------------------------------------ *)
(* Expressions and statements                                          *)
(* ------------------------------------------------------------------ *)

type binop =
  | Add | Sub | Mul
  | And | Or | Xor
  | Shl | Shr | Asr
  | Eq | Ne | Lt | Le | Gt | Ge | Ult | Uge
  | LAnd | LOr (* lazy boolean connectives *)

type unop = Not (* bitwise *) | Neg | LNot (* boolean *)

type mem_space = Sram | Sdram | Scratch

type expr =
  | Int of int * loc
  | Bool of bool * loc
  | Var of string * loc
  | Binop of binop * expr * expr * loc
  | Unop of unop * expr * loc
  | Tuple of expr list * loc
  | Record of (string * expr) list * loc
  | Select of expr * string * loc (* e.x *)
  | Proj of expr * int * loc (* e.#0, tuple projection *)
  | If of expr * expr * expr * loc
  | Call of string * arg list * loc
  | Let of pat * ty option * expr * expr * loc (* let p = e1; e2 *)
  | Vardecl of string * ty option * expr * expr * loc (* var x = e1; e2 *)
  | Assign of string * expr * loc (* x := e, of type unit *)
  | Seq of expr * expr * loc (* e1; e2 *)
  | While of expr * expr * loc (* while (c) body, of type unit *)
  | Unpack of layout_expr * expr * loc
  | Pack of layout_expr * expr * loc (* argument is a record expr *)
  | MemRead of mem_space * expr * int option * loc (* sram(addr [, n]) *)
  | MemWrite of mem_space * expr * expr * loc (* space(a) <- e, unit *)
  | Hash of expr * loc
  | BitTestSet of expr * expr * loc (* bit_test_set(addr, v) *)
  | CsrRead of string * loc
  | CsrWrite of string * expr * loc (* csr(name) <- e, unit *)
  | RfifoRead of expr * int * loc (* rfifo(addr, n) *)
  | TfifoWrite of expr * expr * loc (* tfifo(addr) <- e, unit *)
  | CtxArb of loc (* ctx_arb(), unit *)
  | Raise of string * arg list * loc
  | Try of expr * handler list * loc
  | Unit of loc

and arg = Apos of expr | Anamed of string * expr

and pat =
  | Pvar of string * loc
  | Ptuple of string list * loc (* let (a, b, c) = ... *)

and handler = {
  hexn : string; (* exception name introduced by this try *)
  hparams : (string * ty option) list;
  hbody : expr;
  hloc : loc;
}

let expr_loc = function
  | Int (_, l) | Bool (_, l) | Var (_, l) | Binop (_, _, _, l)
  | Unop (_, _, l) | Tuple (_, l) | Record (_, l) | Select (_, _, l)
  | Proj (_, _, l) | If (_, _, _, l) | Call (_, _, l) | Let (_, _, _, _, l)
  | Vardecl (_, _, _, _, l) | Assign (_, _, l) | Seq (_, _, l)
  | While (_, _, l) | Unpack (_, _, l) | Pack (_, _, l)
  | MemRead (_, _, _, l) | MemWrite (_, _, _, l) | Hash (_, l)
  | BitTestSet (_, _, l) | CsrRead (_, l) | CsrWrite (_, _, l)
  | RfifoRead (_, _, l) | TfifoWrite (_, _, l) | CtxArb l
  | Raise (_, _, l) | Try (_, _, l) | Unit l ->
      l

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

type param =
  | Ppos of (string * ty option) list (* fun f (x : t, y) *)
  | Pnamed of (string * ty option) list (* fun g [x1, x2] *)

type fundef = {
  fn_name : string;
  fn_params : param;
  fn_ret : ty option;
  fn_body : expr;
  fn_loc : loc;
}

type topdecl =
  | Dlayout of string * layout_expr * loc
  | Dconst of string * expr * loc
  | Dfun of fundef

type program = { decls : topdecl list }

(* ------------------------------------------------------------------ *)
(* Utility                                                             *)
(* ------------------------------------------------------------------ *)

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*"
  | And -> "&" | Or -> "|" | Xor -> "^"
  | Shl -> "<<" | Shr -> ">>" | Asr -> ">>>"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Ult -> "<u" | Uge -> ">=u"
  | LAnd -> "&&" | LOr -> "||"

let mem_space_to_string = function
  | Sram -> "sram"
  | Sdram -> "sdram"
  | Scratch -> "scratch"
