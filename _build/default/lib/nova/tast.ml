(* Typed abstract syntax, produced by [Typecheck].

   Variables are resolved to unique [Ident.t]s, named arguments are
   normalized to positional order, layout expressions are resolved, and
   every node carries its type. *)

open Support

type texpr = { desc : desc; ty : Types.t; loc : Srcloc.t }

and desc =
  | Tint of int
  | Tbool of bool
  | Tunit
  | Tvar of Ident.t
  | Tfunval of string (* top-level function used as an argument *)
  | Tbinop of Ast.binop * texpr * texpr
  | Tunop of Ast.unop * texpr
  | Ttuple of texpr list
  | Trecord of (string * texpr) list
  | Tselect of texpr * string (* field of record/unpacked *)
  | Tproj of texpr * int (* tuple component *)
  | Tif of texpr * texpr * texpr
  | Tcall of callee * texpr list
  | Tlet of Ident.t * texpr * texpr
  | Tlettuple of Ident.t list * texpr * texpr
  | Tvardecl of Ident.t * texpr * texpr (* mutable binder *)
  | Tassign of Ident.t * texpr
  | Tseq of texpr * texpr
  | Twhile of texpr * texpr
  | Tunpack of Layout.t * texpr
  (* pack: the leaves (in layout order, one overlay alternative chosen)
     paired with the expression supplying each leaf value *)
  | Tpack of Layout.t * (Layout.leaf * texpr) list
  | Tmemread of Ast.mem_space * texpr * int
  | Tmemwrite of Ast.mem_space * texpr * texpr
  | Thash of texpr
  | Tbittestset of texpr * texpr
  | Tcsrread of string
  | Tcsrwrite of string * texpr
  | Trfifo of texpr * int
  | Ttfifo of texpr * texpr
  | Tctxarb
  | Traise of Ident.t * texpr list (* target is an exn-typed binding *)
  | Ttry of texpr * thandler list

and callee =
  | Cglobal of string
  | Clocal of Ident.t (* function-typed parameter *)

and thandler = {
  h_exn : Ident.t; (* the exception identity bound by this try *)
  h_params : (Ident.t * Types.t) list;
  h_body : texpr;
}

type tfun = {
  f_name : string;
  f_params : (Ident.t * Types.t) list;
  f_ret : Types.t;
  f_body : texpr;
  (* true when some call to this function must be a tail call (the
     function participates in recursion) *)
  f_recursive : bool;
}

type tprogram = {
  funs : tfun list; (* in source order *)
  entry : string;
  layouts : Layout.env;
}

let mk desc ty loc = { desc; ty; loc }
