(* Semantic types (paper §3: a type system stratified into types and
   layouts).

   [Packed l] is a synonym for the word tuple of l's size; [Unpacked l]
   is a synonym for the record type spreading every bit-field (including
   all overlay alternatives).  [equal] compares modulo these synonyms.

   Arrow and exception types exist only to describe *arguments* (the
   typing rules below forbid them anywhere a value could outlive its
   scope), which is what guarantees that control needs no memory
   allocation. *)

type t =
  | Word
  | Bool
  | Unit
  | Never (* the type of expressions that cannot return, e.g. raise *)
  | Tuple of t list
  | Record of (string * t) list (* in declaration order *)
  | Packed of Layout.t
  | Unpacked of Layout.t
  | Fun of t list * t
  | Exn of t (* payload type *)

(* The record type corresponding to unpacked(l). *)
let rec unpacked_record (l : Layout.t) : t =
  match l with
  | Layout.Leaf _ -> Word
  | Layout.Gap _ -> Record []
  | Layout.Struct fields ->
      Record
        (List.filter_map
           (fun (n, sub) ->
             match sub with
             | Layout.Gap _ -> None
             | _ -> Some (n, unpacked_record sub))
           fields)
  | Layout.Overlay alts ->
      Record (List.map (fun (n, sub) -> (n, unpacked_record sub)) alts)
  | Layout.Seq ts ->
      (* concatenate the fields of the component structs *)
      let fields =
        List.concat_map
          (fun sub ->
            match unpacked_record sub with
            | Record fs -> fs
            | Word -> [] (* a bare leaf in a Seq has no name; unreachable *)
            | _ -> [])
          ts
      in
      Record fields

let packed_tuple (l : Layout.t) : t =
  Tuple (List.init (Layout.word_size l) (fun _ -> Word))

(* Expand the layout synonyms one level. *)
let expand = function
  | Packed l -> packed_tuple l
  | Unpacked l -> unpacked_record l
  | t -> t

let rec equal a b =
  match (expand a, expand b) with
  (* Never is the type of diverging computations; it unifies with any *)
  | Never, _ | _, Never -> true
  | Word, Word | Bool, Bool | Unit, Unit -> true
  | Tuple xs, Tuple ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Record xs, Record ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (n1, t1) (n2, t2) -> n1 = n2 && equal t1 t2)
           xs ys
  | Fun (a1, r1), Fun (a2, r2) ->
      List.length a1 = List.length a2
      && List.for_all2 equal a1 a2 && equal r1 r2
  | Exn t1, Exn t2 -> equal t1 t2
  | _ -> false

(* First-order types can be stored, returned, and bound; arrow and
   exception types cannot (paper §3.1). *)
let rec first_order = function
  | Word | Bool | Unit | Never -> true
  | Tuple ts -> List.for_all first_order ts
  | Record fs -> List.for_all (fun (_, t) -> first_order t) fs
  | Packed _ | Unpacked _ -> true
  | Fun _ | Exn _ -> false

(* Number of machine words a first-order value flattens to. *)
let rec flat_width = function
  | Word | Bool -> 1
  | Unit | Never -> 0
  | Tuple ts -> List.fold_left (fun a t -> a + flat_width t) 0 ts
  | Record fs -> List.fold_left (fun a (_, t) -> a + flat_width t) 0 fs
  | Packed l -> Layout.word_size l
  | Unpacked l -> flat_width (unpacked_record l)
  | Fun _ | Exn _ -> 0

let rec pp ppf = function
  | Word -> Fmt.string ppf "word"
  | Never -> Fmt.string ppf "never"
  | Bool -> Fmt.string ppf "bool"
  | Unit -> Fmt.string ppf "unit"
  | Tuple ts -> Fmt.pf ppf "(@[%a@])" Fmt.(list ~sep:comma pp) ts
  | Record fs ->
      Fmt.pf ppf "[@[%a@]]"
        Fmt.(list ~sep:comma (fun ppf (n, t) -> Fmt.pf ppf "%s: %a" n pp t))
        fs
  | Packed l -> Fmt.pf ppf "packed(%a)" Layout.pp l
  | Unpacked l -> Fmt.pf ppf "unpacked(%a)" Layout.pp l
  | Fun (args, r) ->
      Fmt.pf ppf "fun(@[%a@]): %a" Fmt.(list ~sep:comma pp) args pp r
  | Exn t -> Fmt.pf ppf "exn(%a)" pp t

let to_string t = Fmt.str "%a" pp t
