lib/workloads/nat.ml: Array Ixp Printf
