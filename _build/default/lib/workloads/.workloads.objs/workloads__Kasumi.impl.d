lib/workloads/kasumi.ml: Aes_ref Array Kasumi_ref Lazy Printf
