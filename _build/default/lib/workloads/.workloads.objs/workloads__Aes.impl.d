lib/workloads/aes.ml: Aes_ref Array Lazy Printf
