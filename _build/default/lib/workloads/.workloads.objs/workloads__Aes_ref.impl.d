lib/workloads/aes_ref.ml: Array Lazy
