lib/workloads/kasumi_ref.ml: Array Lazy
