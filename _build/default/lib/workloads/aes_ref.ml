(* Reference AES-128 implementation (encryption only, ECB over whole
   blocks, as in the paper's variant: no CBC, data a multiple of 16
   bytes).

   Everything is derived from first principles -- S-box from the GF(2^8)
   multiplicative inverse and affine map, T-tables from the S-box -- so
   the tables this module computes are genuine AES tables.  The compiled
   Nova program uses the same tables (loaded into simulated SRAM), so
   compiled output must agree with [encrypt_block] bit-for-bit. *)

let word_mask = 0xFFFFFFFF

(* GF(2^8) arithmetic modulo x^8 + x^4 + x^3 + x + 1 (0x11B). *)
let xtime a =
  let a = a lsl 1 in
  if a land 0x100 <> 0 then a lxor 0x11B else a

let gmul a b =
  let rec go a b acc =
    if b = 0 then acc
    else go (xtime a) (b lsr 1) (if b land 1 = 1 then acc lxor a else acc)
  in
  go a b 0

let ginv a =
  if a = 0 then 0
  else begin
    (* brute force: the field is tiny *)
    let rec find x = if gmul a x = 1 then x else find (x + 1) in
    find 1
  end

let rotl8 b n = ((b lsl n) lor (b lsr (8 - n))) land 0xFF

let sbox =
  lazy
    (Array.init 256 (fun i ->
         let inv = ginv i in
         inv lxor rotl8 inv 1 lxor rotl8 inv 2 lxor rotl8 inv 3
         lxor rotl8 inv 4 lxor 0x63))

(* T-tables (big-endian convention: state words are column-major,
   byte 0 = most significant). *)
let t_table k =
  let s = Lazy.force sbox in
  Array.init 256 (fun i ->
      let se = s.(i) in
      let s2 = gmul se 2 and s3 = gmul se 3 in
      let w =
        (* T0 row: [2s, s, s, 3s] as the four bytes (MSB first) *)
        (s2 lsl 24) lor (se lsl 16) lor (se lsl 8) lor s3
      in
      (* Tk = rotate right by 8k bits *)
      let rot = 8 * k in
      if rot = 0 then w
      else ((w lsr rot) lor (w lsl (32 - rot))) land word_mask)

let sbox_words = lazy (Array.map (fun b -> b) (Lazy.force sbox))

(* ------------------------------------------------------------------ *)
(* Key schedule                                                        *)
(* ------------------------------------------------------------------ *)

let rcon =
  [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1B; 0x36 |]

let sub_word w =
  let s = Lazy.force sbox in
  (s.((w lsr 24) land 0xFF) lsl 24)
  lor (s.((w lsr 16) land 0xFF) lsl 16)
  lor (s.((w lsr 8) land 0xFF) lsl 8)
  lor s.(w land 0xFF)

let rot_word w = ((w lsl 8) lor (w lsr 24)) land word_mask

(* 44 round-key words from a 16-byte key given as four words. *)
let expand_key (key : int array) =
  if Array.length key <> 4 then invalid_arg "expand_key: need 4 words";
  let w = Array.make 44 0 in
  Array.blit key 0 w 0 4;
  for i = 4 to 43 do
    let temp = w.(i - 1) in
    let temp =
      if i mod 4 = 0 then
        sub_word (rot_word temp) lxor (rcon.((i / 4) - 1) lsl 24)
      else temp
    in
    w.(i) <- w.(i - 4) lxor temp land word_mask
  done;
  w

(* ------------------------------------------------------------------ *)
(* Block encryption                                                    *)
(* ------------------------------------------------------------------ *)

let byte w n = (w lsr (8 * (3 - n))) land 0xFF

(* Encrypt one 16-byte block (four words, big-endian). *)
let encrypt_block (round_keys : int array) (block : int array) =
  let t0 = t_table 0 and t1 = t_table 1 and t2 = t_table 2 and t3 = t_table 3 in
  let s = Array.init 4 (fun i -> block.(i) lxor round_keys.(i)) in
  let current = ref s in
  for round = 1 to 9 do
    let s = !current in
    let nxt = Array.make 4 0 in
    for c = 0 to 3 do
      nxt.(c) <-
        t0.(byte s.(c) 0)
        lxor t1.(byte s.((c + 1) mod 4) 1)
        lxor t2.(byte s.((c + 2) mod 4) 2)
        lxor t3.(byte s.((c + 3) mod 4) 3)
        lxor round_keys.((4 * round) + c)
    done;
    current := nxt
  done;
  (* final round: SubBytes + ShiftRows, no MixColumns *)
  let s = !current in
  let sb = Lazy.force sbox in
  Array.init 4 (fun c ->
      (sb.(byte s.(c) 0) lsl 24)
      lor (sb.(byte s.((c + 1) mod 4) 1) lsl 16)
      lor (sb.(byte s.((c + 2) mod 4) 2) lsl 8)
      lor sb.(byte s.((c + 3) mod 4) 3)
      lxor round_keys.(40 + c)
      land word_mask)

(* Encrypt a buffer of whole blocks in place. *)
let encrypt_words round_keys (data : int array) =
  let n = Array.length data in
  if n mod 4 <> 0 then invalid_arg "encrypt_words: partial block";
  let out = Array.make n 0 in
  for blk = 0 to (n / 4) - 1 do
    let b = Array.sub data (4 * blk) 4 in
    Array.blit (encrypt_block round_keys b) 0 out (4 * blk) 4
  done;
  out

(* Internet ones-complement checksum over 32-bit words (folded to 16
   bits), as the compiled code maintains for the TCP payload. *)
let ones_complement_sum words =
  let acc =
    Array.fold_left
      (fun acc w -> acc + (w land 0xFFFF) + ((w lsr 16) land 0xFFFF))
      0 words
  in
  let rec fold x = if x > 0xFFFF then fold ((x land 0xFFFF) + (x lsr 16)) else x in
  fold acc
