(* Reference implementation of the Kasumi (3GPP / ETSI) block cipher
   *structure*: the 8-round Feistel network with FL/FO/FI functions and
   the standard key schedule.

   SUBSTITUTION NOTE (see DESIGN.md): the 3GPP specification's concrete
   S7/S9 tables are not available offline, so this module uses
   deterministic stand-in S-boxes with the right shapes (7-bit and 9-bit
   tables).  Both the reference and the compiled Nova program read the
   *same* tables (the Nova code reads them from simulated scratch/SRAM
   memory), so the compiled-vs-reference equivalence check is exact, and
   the memory-system behaviour -- which is what the paper's throughput
   experiment measures -- is identical to real Kasumi: one S9 lookup in
   SRAM and one S7 lookup in scratch per FI half-round. *)

let mask16 = 0xFFFF
let rol16 x n = ((x lsl n) lor (x lsr (16 - n))) land mask16

(* Deterministic stand-in S-boxes (fixed forever: golden values in the
   test suite depend on them). *)
let s7 =
  lazy
    (Array.init 128 (fun i ->
         ((i * 53) + 7 + (i lsr 2 * 31)) land 0x7F lxor (i lsr 5)))

let s9 =
  lazy
    (Array.init 512 (fun i ->
         ((i * 229) + 13 + ((i lsr 3) * 97)) land 0x1FF lxor (i lsr 6)))

(* FI: the 16-bit nonlinear function (two S9/S7 rounds). *)
let fi x ki =
  let s7 = Lazy.force s7 and s9 = Lazy.force s9 in
  let nine = (x lsr 7) land 0x1FF and seven = x land 0x7F in
  let nine = s9.(nine) lxor seven in
  let seven = s7.(seven) lxor (nine land 0x7F) in
  let seven = seven lxor (ki lsr 9) land 0x7F in
  let nine = nine lxor (ki land 0x1FF) in
  let nine = s9.(nine) lxor seven in
  let seven = s7.(seven) lxor (nine land 0x7F) in
  ((seven lsl 9) lor nine) land mask16

(* Per-round subkeys. *)
type round_keys = {
  kl1 : int; kl2 : int;
  ko1 : int; ko2 : int; ko3 : int;
  ki1 : int; ki2 : int; ki3 : int;
}

let key_constants = [| 0x0123; 0x4567; 0x89AB; 0xCDEF; 0xFEDC; 0xBA98; 0x7654; 0x3210 |]

(* Key schedule from a 128-bit key given as 8 16-bit words k1..k8. *)
let schedule (k : int array) =
  if Array.length k <> 8 then invalid_arg "Kasumi.schedule: need 8 halfwords";
  let k' = Array.mapi (fun i ki -> ki lxor key_constants.(i)) k in
  let idx i off = (i + off) mod 8 in
  Array.init 8 (fun i ->
      {
        kl1 = rol16 k.(i) 1;
        kl2 = k'.(idx i 2);
        ko1 = rol16 k.(idx i 1) 5;
        ko2 = rol16 k.(idx i 5) 8;
        ko3 = rol16 k.(idx i 6) 13;
        ki1 = k'.(idx i 4);
        ki2 = k'.(idx i 3);
        ki3 = k'.(idx i 7);
      })

let fo x rk =
  let l = (x lsr 16) land mask16 and r = x land mask16 in
  let l = fi (l lxor rk.ko1) rk.ki1 lxor r in
  let r = fi (r lxor rk.ko2) rk.ki2 lxor l in
  let l = fi (l lxor rk.ko3) rk.ki3 lxor r in
  (l lsl 16) lor r

let fl x rk =
  let l = (x lsr 16) land mask16 and r = x land mask16 in
  let r = r lxor rol16 (l land rk.kl1) 1 in
  let l = l lxor rol16 (r lor rk.kl2) 1 in
  (l lsl 16) lor r

(* Encrypt one 64-bit block given as (high word, low word). *)
let encrypt_block rks (hi, lo) =
  let l = ref hi and r = ref lo in
  for i = 0 to 7 do
    let rk = rks.(i) in
    let out =
      if i mod 2 = 0 then fo (fl !l rk) rk (* odd rounds, 1-based *)
      else fl (fo !l rk) rk
    in
    let nl = !r lxor out in
    r := !l;
    l := nl
  done;
  (!l, !r)

let encrypt_words rks (data : int array) =
  let n = Array.length data in
  if n mod 2 <> 0 then invalid_arg "Kasumi: partial block";
  let out = Array.make n 0 in
  for blk = 0 to (n / 2) - 1 do
    let hi, lo = encrypt_block rks (data.(2 * blk), data.((2 * blk) + 1)) in
    out.(2 * blk) <- hi;
    out.((2 * blk) + 1) <- lo
  done;
  out

(* Packed subkey table as the Nova program reads it from scratch: per
   round, four words of two 16-bit subkeys each:
     word0 = kl1 << 16 | kl2        word1 = ko1 << 16 | ko2
     word2 = ko3 << 16 | ki1        word3 = ki2 << 16 | ki3 *)
let packed_subkeys rks =
  Array.concat
    (Array.to_list
       (Array.map
          (fun rk ->
            [|
              (rk.kl1 lsl 16) lor rk.kl2;
              (rk.ko1 lsl 16) lor rk.ko2;
              (rk.ko3 lsl 16) lor rk.ki1;
              (rk.ki2 lsl 16) lor rk.ki3;
            |])
          rks))
