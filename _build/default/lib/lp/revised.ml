(* Production LP solver: bounded-variable revised dual simplex with a
   dense explicit basis inverse and sparse columns.

   Why dual simplex: the register-allocation MIPs have nonnegative move
   costs, so the all-slack basis with every structural variable at a
   dual-feasible bound is immediately dual feasible -- no phase 1 is ever
   needed.  Branch and bound only ever changes variable bounds, which
   preserves dual feasibility of the current basis, so node re-solves are
   warm-started for free.

   Internal form: every row [a_i x (sense) b_i] becomes [a_i x + s_i = b_i]
   with slack bounds
       Le: s_i in [0, +inf)    Ge: s_i in (-inf, 0]    Eq: s_i in [0, 0].

   Requirements (checked at [create]): every structural variable must have
   at least one finite bound, and a finite bound on the side demanded by
   the sign of its objective coefficient (so that an initial dual-feasible
   placement exists).  The 0-1 models satisfy this trivially. *)

type status = Optimal | Infeasible | Iteration_limit

type t = {
  n : int; (* structural variables *)
  m : int; (* rows = slack variables *)
  cost : float array; (* length n+m; slacks cost 0 *)
  lo : float array; (* length n+m, mutable via set_bounds *)
  hi : float array;
  cols : (int * float) array array; (* sparse column per variable *)
  rhs : float array; (* length m *)
  binv : float array array; (* m x m dense basis inverse *)
  basis : int array; (* length m: variable in basis position i *)
  in_basis : int array; (* var -> basis position, or -1 *)
  at_upper : bool array; (* nonbasic status; meaningful when not basic *)
  xb : float array; (* values of basic variables *)
  dvals : float array; (* reduced costs, maintained incrementally *)
  mutable dvals_fresh : bool;
  mutable dirty : bool; (* xb / dual status must be refreshed *)
  (* cheap-restart queue: (nonbasic var, its value before the bound
     change); the basis and duals are unaffected by bound changes, and
     x_B shifts by one FTRAN column per changed variable *)
  mutable bound_deltas : (int * float) list;
  mutable iters : int;
  mutable total_iters : int;
  mutable factorizations : int;
}

let feas_tol = 1e-7
let dual_tol = 1e-7
let pivot_tol = 1e-9

let create (p : Problem.t) =
  let n = Problem.num_vars p in
  let m = Problem.num_rows p in
  let nm = n + m in
  let cost = Array.make nm 0. in
  let lo = Array.make nm 0. in
  let hi = Array.make nm 0. in
  let cols = Array.make nm [||] in
  let rhs = Array.make m 0. in
  for j = 0 to n - 1 do
    cost.(j) <- Problem.var_obj p j;
    lo.(j) <- Problem.var_lo p j;
    hi.(j) <- Problem.var_hi p j;
    if Float.is_finite lo.(j) = false && Float.is_finite hi.(j) = false then
      invalid_arg "Revised.create: free variables are not supported";
    if cost.(j) > 0. && not (Float.is_finite lo.(j)) then
      invalid_arg "Revised.create: positive cost needs a finite lower bound";
    if cost.(j) < 0. && not (Float.is_finite hi.(j)) then
      invalid_arg "Revised.create: negative cost needs a finite upper bound"
  done;
  (* Build structural columns row-wise then transpose. *)
  let col_build = Array.make n [] in
  let rows = ref [] in
  Problem.iter_rows (fun r -> rows := r :: !rows) p;
  let rows = Array.of_list (List.rev !rows) in
  Array.iteri
    (fun i (r : Problem.row) ->
      rhs.(i) <- r.rhs;
      (match r.sense with
      | Problem.Le ->
          lo.(n + i) <- 0.;
          hi.(n + i) <- infinity
      | Problem.Ge ->
          lo.(n + i) <- neg_infinity;
          hi.(n + i) <- 0.
      | Problem.Eq ->
          lo.(n + i) <- 0.;
          hi.(n + i) <- 0.);
      List.iter (fun (v, c) -> col_build.(v) <- (i, c) :: col_build.(v)) r.terms)
    rows;
  for j = 0 to n - 1 do
    cols.(j) <- Array.of_list (List.rev col_build.(j))
  done;
  for i = 0 to m - 1 do
    cols.(n + i) <- [| (i, 1.0) |]
  done;
  let binv = Array.init m (fun i -> Array.init m (fun k -> if i = k then 1. else 0.)) in
  let basis = Array.init m (fun i -> n + i) in
  let in_basis = Array.make nm (-1) in
  for i = 0 to m - 1 do
    in_basis.(n + i) <- i
  done;
  let at_upper = Array.make nm false in
  for j = 0 to n - 1 do
    (* Dual-feasible initial placement. *)
    if cost.(j) < 0. then at_upper.(j) <- true
    else if not (Float.is_finite lo.(j)) then at_upper.(j) <- true
  done;
  {
    n; m; cost; lo; hi; cols; rhs; binv; basis; in_basis; at_upper;
    xb = Array.make m 0.;
    dvals = Array.make nm 0.;
    dvals_fresh = false;
    dirty = true;
    bound_deltas = [];
    iters = 0;
    total_iters = 0;
    factorizations = 0;
  }

let nonbasic_value t j = if t.at_upper.(j) then t.hi.(j) else t.lo.(j)

(* Recompute x_B = Binv (b - N x_N) from scratch. *)
let recompute_xb t =
  let v = Array.copy t.rhs in
  for j = 0 to t.n + t.m - 1 do
    if t.in_basis.(j) < 0 then begin
      let xj = nonbasic_value t j in
      if xj <> 0. then
        Array.iter (fun (i, c) -> v.(i) <- v.(i) -. (c *. xj)) t.cols.(j)
    end
  done;
  for i = 0 to t.m - 1 do
    let row = t.binv.(i) in
    let acc = ref 0. in
    for k = 0 to t.m - 1 do
      acc := !acc +. (row.(k) *. v.(k))
    done;
    t.xb.(i) <- !acc
  done

(* Dual values y = c_B' Binv and reduced costs for all variables. *)
let compute_duals t =
  let y = Array.make t.m 0. in
  for i = 0 to t.m - 1 do
    let cb = t.cost.(t.basis.(i)) in
    if cb <> 0. then begin
      let row = t.binv.(i) in
      for k = 0 to t.m - 1 do
        y.(k) <- y.(k) +. (cb *. row.(k))
      done
    end
  done;
  y

let reduced_cost t y j =
  let d = ref t.cost.(j) in
  Array.iter (fun (i, c) -> d := !d -. (y.(i) *. c)) t.cols.(j);
  !d

let refresh_dvals t =
  let y = compute_duals t in
  for j = 0 to t.n + t.m - 1 do
    t.dvals.(j) <- (if t.in_basis.(j) >= 0 then 0. else reduced_cost t y j)
  done;
  t.dvals_fresh <- true

(* Restore dual feasibility of nonbasic placements by bound flips (used
   after arbitrary bound changes from branch and bound). *)
let restore_dual_feasibility t =
  let y = compute_duals t in
  t.dvals_fresh <- false;
  for j = 0 to t.n + t.m - 1 do
    if t.in_basis.(j) < 0 then begin
      let d = reduced_cost t y j in
      if (not t.at_upper.(j)) && d < -.dual_tol && Float.is_finite t.hi.(j) then
        t.at_upper.(j) <- true
      else if t.at_upper.(j) && d > dual_tol && Float.is_finite t.lo.(j) then
        t.at_upper.(j) <- false
      else if (not (Float.is_finite t.lo.(j))) && not t.at_upper.(j) then
        t.at_upper.(j) <- true
      else if (not (Float.is_finite t.hi.(j))) && t.at_upper.(j) then
        t.at_upper.(j) <- false
    end
  done

(* FTRAN: w = Binv * A_q for a sparse column q. *)
let ftran t q =
  let w = Array.make t.m 0. in
  Array.iter
    (fun (i, c) ->
      if c <> 0. then
        for k = 0 to t.m - 1 do
          Array.unsafe_set w k
            (Array.unsafe_get w k
            +. (Array.unsafe_get (Array.unsafe_get t.binv k) i *. c))
        done)
    t.cols.(q);
  w

(* Rebuild Binv from scratch with Gauss-Jordan for numerical hygiene. *)
let refactorize t =
  t.factorizations <- t.factorizations + 1;
  let m = t.m in
  (* aug = [B | I] column-built from basis columns. *)
  let b = Array.make_matrix m m 0. in
  for i = 0 to m - 1 do
    Array.iter (fun (r, c) -> b.(r).(i) <- c) t.cols.(t.basis.(i))
  done;
  let inv = Array.init m (fun i -> Array.init m (fun k -> if i = k then 1. else 0.)) in
  for col = 0 to m - 1 do
    (* partial pivot *)
    let piv = ref col in
    for r = col + 1 to m - 1 do
      if Float.abs b.(r).(col) > Float.abs b.(!piv).(col) then piv := r
    done;
    if Float.abs b.(!piv).(col) < 1e-12 then
      failwith "Revised.refactorize: singular basis";
    if !piv <> col then begin
      let tmp = b.(col) in
      b.(col) <- b.(!piv);
      b.(!piv) <- tmp;
      let tmp = inv.(col) in
      inv.(col) <- inv.(!piv);
      inv.(!piv) <- tmp
    end;
    let p = b.(col).(col) in
    for k = 0 to m - 1 do
      b.(col).(k) <- b.(col).(k) /. p;
      inv.(col).(k) <- inv.(col).(k) /. p
    done;
    for r = 0 to m - 1 do
      if r <> col && b.(r).(col) <> 0. then begin
        let f = b.(r).(col) in
        for k = 0 to m - 1 do
          b.(r).(k) <- b.(r).(k) -. (f *. b.(col).(k));
          inv.(r).(k) <- inv.(r).(k) -. (f *. inv.(col).(k))
        done
      end
    done
  done;
  for i = 0 to m - 1 do
    Array.blit inv.(i) 0 t.binv.(i) 0 m
  done

let set_bounds t j ~lo ~hi =
  if j < 0 || j >= t.n then invalid_arg "Revised.set_bounds";
  (* Tightenings (branch-and-bound dives) restart incrementally: the
     basis and reduced costs are untouched, a nonbasic variable stays on
     its side with its value merely clamped, and x_B shifts by one FTRAN
     column.  Widenings (backtracks) may make the current side
     dual-infeasible, so they schedule the full refresh. *)
  let widening = lo < t.lo.(j) || hi > t.hi.(j) in
  if widening then t.dirty <- true;
  if not t.dirty then begin
    (* only the OLDEST record per variable matters: several changes
       between two solves must not double-count the shift *)
    if
      t.in_basis.(j) < 0
      && not (List.exists (fun (k, _) -> k = j) t.bound_deltas)
    then t.bound_deltas <- (j, nonbasic_value t j) :: t.bound_deltas
  end;
  t.lo.(j) <- lo;
  t.hi.(j) <- hi

exception Done of status

let solve ?(max_iters = 200_000) t =
  if t.dirty then begin
    restore_dual_feasibility t;
    recompute_xb t;
    t.dirty <- false;
    t.bound_deltas <- []
  end
  else if t.bound_deltas <> [] then begin
    (* incremental restart: shift x_B by the changed nonbasic values *)
    List.iter
      (fun (j, old_value) ->
        if t.in_basis.(j) < 0 then begin
          let new_value = nonbasic_value t j in
          let delta = new_value -. old_value in
          if Float.abs delta > 1e-13 then begin
            let w = ftran t j in
            for i = 0 to t.m - 1 do
              t.xb.(i) <- t.xb.(i) -. (delta *. w.(i))
            done
          end
        end)
      t.bound_deltas;
    t.bound_deltas <- []
  end;
  if not t.dvals_fresh then refresh_dvals t;
  t.iters <- 0;
  let nm = t.n + t.m in
  let alphas = Array.make nm 0. in
  (try
     while true do
       if t.iters >= max_iters then raise (Done Iteration_limit);
       t.iters <- t.iters + 1;
       t.total_iters <- t.total_iters + 1;
       if t.total_iters mod 2000 = 0 then begin
         refactorize t;
         recompute_xb t;
         refresh_dvals t
       end;
       (* Leaving variable: most-infeasible basic. *)
       let r = ref (-1) in
       let worst = ref feas_tol in
       let sigma = ref 1.0 in
       for i = 0 to t.m - 1 do
         let v = Array.unsafe_get t.basis i in
         let x = Array.unsafe_get t.xb i in
         if x > t.hi.(v) +. feas_tol && x -. t.hi.(v) > !worst then begin
           r := i;
           worst := x -. t.hi.(v);
           sigma := 1.0
         end
         else if x < t.lo.(v) -. feas_tol && t.lo.(v) -. x > !worst then begin
           r := i;
           worst := t.lo.(v) -. x;
           sigma := -1.0
         end
       done;
       if !r < 0 then raise (Done Optimal);
       let r = !r and sigma = !sigma in
       (* Pivot row of Binv. *)
       let rho = t.binv.(r) in
       (* Ratio test over nonbasic columns, using the maintained reduced
          costs; alphas are cached for the incremental dual update. *)
       let best_j = ref (-1) in
       let best_ratio = ref infinity in
       let best_alpha = ref 0. in
       for j = 0 to nm - 1 do
         if t.in_basis.(j) < 0 then begin
           let alpha = ref 0. in
           let col = t.cols.(j) in
           for k = 0 to Array.length col - 1 do
             let i, c = Array.unsafe_get col k in
             alpha := !alpha +. (Array.unsafe_get rho i *. c)
           done;
           Array.unsafe_set alphas j !alpha;
           if t.lo.(j) < t.hi.(j) -. 1e-15 then begin
             let a = sigma *. !alpha in
             let eligible =
               if t.at_upper.(j) then a < -.pivot_tol else a > pivot_tol
             in
             if eligible then begin
               let d = Array.unsafe_get t.dvals j in
               let ratio = Float.abs (d /. a) in
               if
                 ratio < !best_ratio -. 1e-12
                 || (ratio < !best_ratio +. 1e-12
                    && Float.abs a > Float.abs !best_alpha)
               then begin
                 best_j := j;
                 best_ratio := ratio;
                 best_alpha := !alpha
               end
             end
           end
         end
       done;
       if !best_j < 0 then raise (Done Infeasible);
       let q = !best_j in
       (* incremental dual update: d_j -= (d_q / alpha_q) * alpha_j *)
       let theta = t.dvals.(q) /. alphas.(q) in
       if theta <> 0. then
         for j = 0 to nm - 1 do
           if t.in_basis.(j) < 0 && j <> q then
             Array.unsafe_set t.dvals j
               (Array.unsafe_get t.dvals j -. (theta *. Array.unsafe_get alphas j))
         done;
       (* Full entering column. *)
       let w = ftran t q in
       let wr = w.(r) in
       let leaving = t.basis.(r) in
       let target =
         if sigma > 0. then t.hi.(leaving) else t.lo.(leaving)
       in
       let step = (t.xb.(r) -. target) /. wr in
       (* Update basic values. *)
       for i = 0 to t.m - 1 do
         t.xb.(i) <- t.xb.(i) -. (step *. w.(i))
       done;
       let entering_old = nonbasic_value t q in
       (* Update Binv: pivot row r on w. *)
       let inv_wr = 1.0 /. wr in
       let br = t.binv.(r) in
       for k = 0 to t.m - 1 do
         Array.unsafe_set br k (Array.unsafe_get br k *. inv_wr)
       done;
       for i = 0 to t.m - 1 do
         if i <> r then begin
           let wi = Array.unsafe_get w i in
           if Float.abs wi > 1e-13 then begin
             let bi = Array.unsafe_get t.binv i in
             for k = 0 to t.m - 1 do
               Array.unsafe_set bi k
                 (Array.unsafe_get bi k -. (wi *. Array.unsafe_get br k))
             done
           end
         end
       done;
       (* Swap basis membership. *)
       t.basis.(r) <- q;
       t.in_basis.(q) <- r;
       t.in_basis.(leaving) <- -1;
       t.at_upper.(leaving) <- sigma > 0.;
       t.xb.(r) <- entering_old +. step;
       t.dvals.(leaving) <- -.theta;
       t.dvals.(q) <- 0.
     done;
     assert false
   with Done s ->
     (match s with
     | Optimal | Infeasible | Iteration_limit -> s))

let primal t =
  let x = Array.make t.n 0. in
  for j = 0 to t.n - 1 do
    let pos = t.in_basis.(j) in
    x.(j) <- (if pos >= 0 then t.xb.(pos) else nonbasic_value t j)
  done;
  x

let objective t =
  let x = primal t in
  let acc = ref 0. in
  for j = 0 to t.n - 1 do
    acc := !acc +. (t.cost.(j) *. x.(j))
  done;
  !acc

let iterations t = t.total_iters
let factorizations t = t.factorizations
let num_rows t = t.m
let num_cols t = t.n
