(* Branch and bound for 0-1 (and general-integer) programs over the
   revised dual simplex.

   A single solver state is threaded through a depth-first search; each
   node only changes variable bounds, which keeps the current basis dual
   feasible, so child re-solves take few pivots.  The first child explored
   fixes the branching variable toward its fractional value (diving), which
   finds integral incumbents quickly on the register-allocation models. *)

type status = Optimal | Infeasible | Limit

type result = {
  status : status;
  objective : float;
  solution : float array;
  nodes : int;
  root_objective : float;
  root_time : float; (* seconds to solve the root relaxation *)
  total_time : float;
  simplex_iterations : int;
}

let int_tol = 1e-6

let fractional_var (p : Problem.t) x =
  (* Most fractional integer-constrained variable, preferring variables
     with a real objective coefficient: those encode actual decisions
     (moves), whereas zero/epsilon-cost variables (register colors) are
     largely symmetric and should be branched last. *)
  let best = ref (-1) in
  let best_key = ref (-1, int_tol) in
  Array.iteri
    (fun j v ->
      if Problem.var_integer p j then begin
        let f = Float.abs (v -. Float.round v) in
        if f > int_tol then begin
          let costly = if Float.abs (Problem.var_obj p j) > 1e-5 then 1 else 0 in
          if (costly, f) > !best_key then begin
            best := j;
            best_key := (costly, f)
          end
        end
      end)
    x;
  !best

exception Gap_closed

let solve ?(time_limit = 600.) ?(node_limit = 500_000) ?(rel_gap = 1e-4)
    (p : Problem.t) =
  let t0 = Sys.time () in
  let solver = Revised.create p in
  let nodes = ref 0 in
  let incumbent = ref None in
  let incumbent_obj = ref infinity in
  let limit_hit = ref false in
  let orig_lo = Array.init (Problem.num_vars p) (Problem.var_lo p) in
  let orig_hi = Array.init (Problem.num_vars p) (Problem.var_hi p) in
  let root_objective = ref nan in
  let root_time = ref 0. in
  let rec node depth =
    if Sys.time () -. t0 > time_limit || !nodes >= node_limit then
      limit_hit := true
    else begin
      incr nodes;
      match Revised.solve solver with
      | Revised.Iteration_limit -> limit_hit := true
      | Revised.Infeasible -> ()
      | Revised.Optimal ->
          let obj = Revised.objective solver in
          if depth = 0 then begin
            root_objective := obj;
            root_time := Sys.time () -. t0
          end;
          (* Prune against incumbent (with relative gap). *)
          let cutoff =
            if !incumbent = None then infinity
            else !incumbent_obj -. (rel_gap *. Float.abs !incumbent_obj) -. 1e-9
          in
          if obj < cutoff then begin
            let x = Revised.primal solver in
            match fractional_var p x with
            | -1 ->
                (* Integral: new incumbent.  If it is within the gap of
                   the root relaxation -- a lower bound on the optimum --
                   optimality is proven and the search can stop. *)
                incumbent := Some (Array.copy x);
                incumbent_obj := obj;
                if
                  Float.is_finite !root_objective
                  && obj
                     <= !root_objective
                        +. (rel_gap *. Float.abs obj)
                        +. 1e-9
                then raise Gap_closed
            | v ->
                let f = x.(v) in
                let lo = floor f and hi = ceil f in
                (* two children; explore the nearer-integer side first *)
                let children =
                  if f -. lo < hi -. f then
                    [ (orig_lo.(v), lo); (hi, orig_hi.(v)) ]
                  else [ (hi, orig_hi.(v)); (orig_lo.(v), lo) ]
                in
                List.iter
                  (fun (l, h) ->
                    if l <= h +. 1e-9 && not !limit_hit then begin
                      Revised.set_bounds solver v ~lo:l ~hi:h;
                      node (depth + 1);
                      Revised.set_bounds solver v ~lo:orig_lo.(v)
                        ~hi:orig_hi.(v)
                    end)
                  children
          end
    end
  in
  (try node 0 with Gap_closed -> ());
  let total_time = Sys.time () -. t0 in
  match !incumbent with
  | Some x ->
      {
        status = (if !limit_hit then Limit else Optimal);
        objective = !incumbent_obj;
        solution = x;
        nodes = !nodes;
        root_objective = !root_objective;
        root_time = !root_time;
        total_time;
        simplex_iterations = Revised.iterations solver;
      }
  | None ->
      {
        status = (if !limit_hit then Limit else Infeasible);
        objective = infinity;
        solution = Array.make (Problem.num_vars p) 0.;
        nodes = !nodes;
        root_objective = !root_objective;
        root_time = !root_time;
        total_time;
        simplex_iterations = Revised.iterations solver;
      }
