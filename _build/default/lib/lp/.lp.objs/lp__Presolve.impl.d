lib/lp/presolve.ml: Array Float Hashtbl Int List Option Printf Problem Queue String
