lib/lp/revised.ml: Array Float List Problem
