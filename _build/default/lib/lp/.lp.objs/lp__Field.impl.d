lib/lp/field.ml: Float Fmt Rat
