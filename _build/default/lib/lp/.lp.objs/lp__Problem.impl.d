lib/lp/problem.ml: Array Float Fmt Hashtbl Int List Option Support Vec
