lib/lp/mip.ml: Array Branch_bound Presolve Problem Revised Sys
