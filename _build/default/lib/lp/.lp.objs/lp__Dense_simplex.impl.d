lib/lp/dense_simplex.ml: Array Field Float List Problem
