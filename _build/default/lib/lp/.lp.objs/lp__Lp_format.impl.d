lib/lp/lp_format.ml: Buffer Float Fun List Printf Problem String
