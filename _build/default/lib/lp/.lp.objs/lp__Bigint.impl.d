lib/lp/bigint.ml: Array Buffer Char Fmt Hashtbl Int List Printf String
