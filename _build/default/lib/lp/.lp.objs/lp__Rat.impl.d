lib/lp/rat.ml: Bigint Float Fmt Int64
