(* Ordered-field abstraction: the dense simplex is one implementation
   instantiated at [Float_field] (fast, approximate) and [Rat_field]
   (exact, for cross-checking in tests). *)

module type S = sig
  type t

  val zero : t
  val one : t
  val of_int : int -> t
  val of_float : float -> t
  val to_float : t -> float
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val compare : t -> t -> int
  val abs : t -> t

  (* [is_zero] may use a tolerance in inexact instances. *)
  val is_zero : t -> bool
  val pp : t Fmt.t
end

module Float_field : S with type t = float = struct
  type t = float

  let eps = 1e-9
  let zero = 0.
  let one = 1.
  let of_int = float_of_int
  let of_float f = f
  let to_float f = f
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let neg = ( ~-. )
  let compare = Float.compare
  let abs = Float.abs
  let is_zero f = Float.abs f < eps
  let pp = Fmt.float
end

module Rat_field : S with type t = Rat.t = struct
  type t = Rat.t

  let zero = Rat.zero
  let one = Rat.one
  let of_int = Rat.of_int
  let of_float = Rat.of_float
  let to_float = Rat.to_float
  let add = Rat.add
  let sub = Rat.sub
  let mul = Rat.mul
  let div = Rat.div
  let neg = Rat.neg
  let compare = Rat.compare
  let abs = Rat.abs
  let is_zero = Rat.is_zero
  let pp = Rat.pp
end
