(* LP/MIP presolve.

   The register-allocation models contain vast numbers of structurally
   trivial constraints -- copy-propagation equalities (After = Before),
   two-bank one-place constraints (x + y = 1), and variables fixed by the
   static bank-pruning analysis.  Presolve eliminates these before the
   simplex ever sees them, typically shrinking the model by 3-10x:

     - empty rows        : dropped (checked for consistency);
     - singleton rows    : converted into variable bounds;
     - fixed variables   : substituted into rows and objective;
     - doubleton x = y   : alias elimination (coefs +-1, integral rhs,
                           preserving 0-1 integrality);
     - doubleton x+y = c : substitution y := c - x (same restriction).

   A postsolve record reconstructs values of eliminated variables. *)

type elim =
  | Fixed of int * float (* var = value *)
  | Affine of int * float * float * int (* var = a + b * other *)

type info = {
  n_original : int;
  elims : elim list; (* in elimination order; replay in reverse *)
  keep_map : int array; (* original var -> reduced var, or -1 *)
  obj_constant : float;
}

type outcome = Reduced of Problem.t * info | Infeasible_detected

let feas_tol = 1e-9

(* Mutable working representation. *)
type work = {
  n : int;
  lo : float array;
  hi : float array;
  obj : float array;
  integer : bool array;
  alive_var : bool array;
  (* rows: id -> (terms hashtable var->coef, sense, rhs); names kept for
     diagnostics *)
  mutable rows : (int, (int, float) Hashtbl.t * Problem.sense ref * float ref) Hashtbl.t;
  row_names : (int, string) Hashtbl.t;
  var_rows : (int, unit) Hashtbl.t array; (* var -> set of row ids *)
  mutable elims : elim list;
  mutable obj_constant : float;
  mutable infeasible : bool;
  queue : int Queue.t; (* row ids to revisit *)
}

let init (p : Problem.t) =
  let n = Problem.num_vars p in
  let w =
    {
      n;
      lo = Array.init n (Problem.var_lo p);
      hi = Array.init n (Problem.var_hi p);
      obj = Array.init n (Problem.var_obj p);
      integer = Array.init n (Problem.var_integer p);
      alive_var = Array.make n true;
      rows = Hashtbl.create 64;
      row_names = Hashtbl.create 64;
      var_rows = Array.init n (fun _ -> Hashtbl.create 4);
      elims = [];
      obj_constant = 0.;
      infeasible = false;
      queue = Queue.create ();
    }
  in
  let rid = ref 0 in
  Problem.iter_rows
    (fun r ->
      let tbl = Hashtbl.create (List.length r.terms) in
      List.iter
        (fun (v, c) ->
          Hashtbl.replace tbl v c;
          Hashtbl.replace w.var_rows.(v) !rid ())
        r.terms;
      Hashtbl.replace w.rows !rid (tbl, ref r.sense, ref r.rhs);
      Hashtbl.replace w.row_names !rid r.row_name;
      Queue.add !rid w.queue;
      incr rid)
    p;
  w

let row_alive w rid = Hashtbl.mem w.rows rid

let kill_row w rid =
  match Hashtbl.find_opt w.rows rid with
  | None -> ()
  | Some (tbl, _, _) ->
      Hashtbl.iter (fun v _ -> Hashtbl.remove w.var_rows.(v) rid) tbl;
      Hashtbl.remove w.rows rid

let tighten_lo w v x =
  if x > w.lo.(v) then begin
    w.lo.(v) <- (if w.integer.(v) then Float.ceil (x -. feas_tol) else x);
    if w.lo.(v) > w.hi.(v) +. feas_tol then w.infeasible <- true
  end

let tighten_hi w v x =
  if x < w.hi.(v) then begin
    w.hi.(v) <- (if w.integer.(v) then Float.floor (x +. feas_tol) else x);
    if w.lo.(v) > w.hi.(v) +. feas_tol then w.infeasible <- true
  end

(* Substitute variable [v] := [a] + [b] * [u] everywhere ([u] < 0 means a
   pure constant).  Re-queue all affected rows. *)
let substitute w v ~a ~b ~u =
  w.alive_var.(v) <- false;
  w.elims <- (if u < 0 then Fixed (v, a) else Affine (v, a, b, u)) :: w.elims;
  (* objective *)
  if w.obj.(v) <> 0. then begin
    w.obj_constant <- w.obj_constant +. (w.obj.(v) *. a);
    if u >= 0 then w.obj.(u) <- w.obj.(u) +. (w.obj.(v) *. b);
    w.obj.(v) <- 0.
  end;
  let rids = Hashtbl.fold (fun rid () acc -> rid :: acc) w.var_rows.(v) [] in
  List.iter
    (fun rid ->
      match Hashtbl.find_opt w.rows rid with
      | None -> ()
      | Some (tbl, _sense, rhs) ->
          (match Hashtbl.find_opt tbl v with
          | None -> ()
          | Some c ->
              Hashtbl.remove tbl v;
              Hashtbl.remove w.var_rows.(v) rid;
              rhs := !rhs -. (c *. a);
              if u >= 0 then begin
                let prev = Option.value ~default:0. (Hashtbl.find_opt tbl u) in
                let c' = prev +. (c *. b) in
                if Float.abs c' < 1e-12 then begin
                  Hashtbl.remove tbl u;
                  Hashtbl.remove w.var_rows.(u) rid
                end
                else begin
                  Hashtbl.replace tbl u c';
                  Hashtbl.replace w.var_rows.(u) rid ()
                end
              end);
          Queue.add rid w.queue)
    rids

let fix_var w v x =
  if w.alive_var.(v) then begin
    if x < w.lo.(v) -. feas_tol || x > w.hi.(v) +. feas_tol then
      w.infeasible <- true
    else if w.integer.(v) && Float.abs (x -. Float.round x) > feas_tol then
      w.infeasible <- true
    else substitute w v ~a:x ~b:0. ~u:(-1)
  end

(* Process one row: empty/singleton/doubleton reductions. *)
let process_row w rid =
  match Hashtbl.find_opt w.rows rid with
  | None -> ()
  | Some (tbl, sense, rhs) -> (
      let nterms = Hashtbl.length tbl in
      if nterms = 0 then begin
        let ok =
          match !sense with
          | Problem.Le -> !rhs >= -.feas_tol
          | Problem.Ge -> !rhs <= feas_tol
          | Problem.Eq -> Float.abs !rhs <= feas_tol
        in
        if not ok then w.infeasible <- true;
        kill_row w rid
      end
      else if nterms = 1 then begin
        let v, c = Hashtbl.fold (fun v c _ -> (v, c)) tbl (0, 0.) in
        let x = !rhs /. c in
        (match (!sense, c > 0.) with
        | Problem.Eq, _ ->
            kill_row w rid;
            fix_var w v x
        | Problem.Le, true | Problem.Ge, false ->
            kill_row w rid;
            tighten_hi w v x
        | Problem.Le, false | Problem.Ge, true ->
            kill_row w rid;
            tighten_lo w v x);
        if w.lo.(v) >= w.hi.(v) -. feas_tol && w.alive_var.(v) then
          fix_var w v w.lo.(v)
      end
      else if nterms = 2 && !sense = Problem.Eq then begin
        (* a x + b y = c with |a| = |b| = 1: eliminate y = (c - a x)/b. *)
        let terms = Hashtbl.fold (fun v c acc -> (v, c) :: acc) tbl [] in
        let unit c = Float.abs (Float.abs c -. 1.) < 1e-12 in
        (* Eliminating y must not lose y's integrality: with unit
           coefficients, y is integral iff x is, provided rhs is integral. *)
        let integrality_safe x y =
          (not w.integer.(y)) || (w.integer.(x) && Float.is_integer !rhs)
        in
        match terms with
        | [ (x, a); (y, b) ] when unit a && unit b && integrality_safe x y ->
            (* y = rhs/b - (a/b) x *)
            let const = !rhs /. b and slope = -.(a /. b) in
            kill_row w rid;
            (* implied bounds on x from y's bounds *)
            let ylo = w.lo.(y) and yhi = w.hi.(y) in
            if slope > 0. then begin
              if Float.is_finite ylo then tighten_lo w x ((ylo -. const) /. slope);
              if Float.is_finite yhi then tighten_hi w x ((yhi -. const) /. slope)
            end
            else begin
              if Float.is_finite ylo then tighten_hi w x ((ylo -. const) /. slope);
              if Float.is_finite yhi then tighten_lo w x ((yhi -. const) /. slope)
            end;
            substitute w y ~a:const ~b:slope ~u:x;
            if w.lo.(x) >= w.hi.(x) -. feas_tol && w.alive_var.(x) then
              fix_var w x w.lo.(x)
        | _ -> ()
      end)

let run (p : Problem.t) =
  let w = init p in
  (* Pre-pass: fix variables whose bounds already coincide. *)
  for v = 0 to w.n - 1 do
    if w.lo.(v) >= w.hi.(v) -. feas_tol && Float.is_finite w.lo.(v) then
      fix_var w v w.lo.(v)
  done;
  while (not w.infeasible) && not (Queue.is_empty w.queue) do
    let rid = Queue.pop w.queue in
    if row_alive w rid then process_row w rid
  done;
  if w.infeasible then Infeasible_detected
  else begin
    (* Rebuild reduced problem. *)
    let keep_map = Array.make w.n (-1) in
    let reduced = Problem.create () in
    for v = 0 to w.n - 1 do
      if w.alive_var.(v) then
        keep_map.(v) <-
          Problem.add_var reduced ~lo:w.lo.(v) ~hi:w.hi.(v) ~obj:w.obj.(v)
            ~integer:w.integer.(v)
            (Problem.var_name p v)
    done;
    (* Deduplicate rows: chains of aliased variables leave many copies
       of the same constraint (e.g. per-program-point interference rows
       collapse onto one representative).  Identical term vectors merge;
       for inequalities the tightest bound wins. *)
    let canonical tbl =
      Hashtbl.fold (fun v c acc -> (keep_map.(v), c) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    let best :
        (string, Problem.sense * float * (int * float) list * string) Hashtbl.t =
      Hashtbl.create 256
    in
    let infeasible_rows = ref false in
    Hashtbl.iter
      (fun rid (tbl, sense, rhs) ->
        let rname = Option.value ~default:"" (Hashtbl.find_opt w.row_names rid) in
        let terms = canonical tbl in
        let key =
          String.concat ";"
            ((match !sense with
             | Problem.Le -> "<"
             | Problem.Ge -> ">"
             | Problem.Eq -> "=")
            :: List.map (fun (v, c) -> Printf.sprintf "%d:%h" v c) terms)
        in
        match Hashtbl.find_opt best key with
        | None -> Hashtbl.replace best key (!sense, !rhs, terms, rname)
        | Some (s, r, _, n) -> (
            match s with
            | Problem.Le ->
                Hashtbl.replace best key (s, Float.min r !rhs, terms, n)
            | Problem.Ge ->
                Hashtbl.replace best key (s, Float.max r !rhs, terms, n)
            | Problem.Eq ->
                if Float.abs (r -. !rhs) > feas_tol then infeasible_rows := true))
      w.rows;
    Hashtbl.iter
      (fun _ (sense, rhs, terms, name) ->
        Problem.add_row reduced ~name sense rhs terms)
      best;
    if !infeasible_rows then w.infeasible <- true;
    if w.infeasible then Infeasible_detected
    else
      Reduced
        ( reduced,
          {
            n_original = w.n;
            elims = w.elims;
            keep_map;
            obj_constant = w.obj_constant;
          } )
  end

let postsolve info reduced_solution =
  let x = Array.make info.n_original 0. in
  Array.iteri
    (fun v r -> if r >= 0 then x.(v) <- reduced_solution.(r))
    info.keep_map;
  (* [elims] is newest-first.  An elimination only ever refers to a
     variable that was alive at its time, i.e. one that is either kept or
     eliminated *later* (appearing nearer the head).  Replaying head to
     tail therefore resolves every reference to an already-computed
     value. *)
  List.iter
    (fun e ->
      match e with
      | Fixed (v, a) -> x.(v) <- a
      | Affine (v, a, b, u) -> x.(v) <- a +. (b *. x.(u)))
    info.elims;
  x
