(* Arbitrary-precision signed integers.

   Sign-magnitude representation over base-2^30 limbs (least significant
   first).  No external dependency (zarith is not available offline); the
   exact-rational simplex used for cross-checking the float solver is built
   on top of this module.

   Invariants: magnitude has no trailing zero limbs; zero is represented
   with [sign = 0] and an empty magnitude. *)

type t = { sign : int; (* -1, 0, +1 *) mag : int array (* little-endian *) }

let base_bits = 30
let base = 1 lsl base_bits
let mask = base - 1

let zero = { sign = 0; mag = [||] }
let is_zero t = t.sign = 0

let normalize sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !n }

let of_int i =
  if i = 0 then zero
  else begin
    let sign = if i > 0 then 1 else -1 in
    (* min_int negation overflows; go via two limbs straight away. *)
    let rec limbs acc v =
      if v = 0 then List.rev acc else limbs ((v land mask) :: acc) (v lsr base_bits)
    in
    let abs_limbs =
      if i = min_int then
        (* |min_int| = 2^62 on 63-bit ints *)
        limbs [] ((-(i + 1)) ) |> fun ls ->
        (* add 1 back: (|i|-1) + 1 *)
        let a = Array.of_list ls in
        let a = Array.append a [| 0; 0; 0 |] in
        let carry = ref 1 in
        Array.iteri
          (fun j d ->
            let s = d + !carry in
            a.(j) <- s land mask;
            carry := s lsr base_bits)
          (Array.copy a);
        Array.to_list a
      else limbs [] (abs i)
    in
    normalize sign (Array.of_list abs_limbs)
  end

let one = of_int 1
let minus_one = of_int (-1)

(* magnitude comparison *)
let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Int.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let compare a b =
  if a.sign <> b.sign then Int.compare a.sign b.sign
  else if a.sign = 0 then 0
  else a.sign * cmp_mag a.mag b.mag

let equal a b = compare a b = 0

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t
let sign t = t.sign

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let l = max la lb in
  let r = Array.make (l + 1) 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  r.(l) <- !carry;
  r

(* requires |a| >= |b| *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let db = if i < lb then b.(i) else 0 in
    let s = a.(i) - db - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  r

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else begin
    match cmp_mag a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> normalize a.sign (sub_mag a.mag b.mag)
    | _ -> normalize b.sign (sub_mag b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else begin
    let la = Array.length a.mag and lb = Array.length b.mag in
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.mag.(i) in
      for j = 0 to lb - 1 do
        (* ai * bj <= (2^30-1)^2 < 2^60; plus r + carry still < 2^62 *)
        let t = (ai * b.mag.(j)) + r.(i + j) + !carry in
        r.(i + j) <- t land mask;
        carry := t lsr base_bits
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    normalize (a.sign * b.sign) r
  end

(* Divide magnitude by a single limb; returns (quotient mag, remainder). *)
let divmod_mag_limb a d =
  let l = Array.length a in
  let q = Array.make l 0 in
  let r = ref 0 in
  for i = l - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

let shift_left_limbs mag k =
  if k = 0 then mag else Array.append (Array.make k 0) mag

(* Knuth algorithm D on normalized magnitudes.  Requires |a| >= |b| and
   [b] with at least 2 limbs (single-limb case handled separately). *)
let divmod_mag a b =
  let lb = Array.length b in
  if lb = 1 then begin
    let q, r = divmod_mag_limb a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  end
  else begin
    (* Normalize so that the top limb of b is >= base/2. *)
    let shift = ref 0 in
    while (b.(lb - 1) lsl !shift) land mask < base / 2 do
      incr shift
    done;
    let sh = !shift in
    let shl mag =
      if sh = 0 then Array.copy mag
      else begin
        let l = Array.length mag in
        let r = Array.make (l + 1) 0 in
        let carry = ref 0 in
        for i = 0 to l - 1 do
          let v = (mag.(i) lsl sh) lor !carry in
          r.(i) <- v land mask;
          carry := v lsr base_bits
        done;
        r.(l) <- !carry;
        r
      end
    in
    let u = shl a in
    let v =
      let v = shl b in
      (* drop the (zero) extension limb if present *)
      let n = ref (Array.length v) in
      while !n > 0 && v.(!n - 1) = 0 do
        decr n
      done;
      Array.sub v 0 !n
    in
    let n = Array.length v in
    let m = Array.length u - n in
    let u = Array.append u [| 0 |] in
    let q = Array.make (max 1 (m + 1)) 0 in
    let vn1 = v.(n - 1) in
    let vn2 = v.(n - 2) in
    for j = m downto 0 do
      (* Estimate q_hat from top two limbs of current remainder. *)
      let top = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
      let q_hat = ref (top / vn1) in
      let r_hat = ref (top mod vn1) in
      (* Knuth step D3: correct the estimate downward at most twice. *)
      let continue_adjust = ref true in
      while !continue_adjust do
        if
          !q_hat >= base
          || !q_hat * vn2 > (!r_hat lsl base_bits) lor u.(j + n - 2)
        then begin
          decr q_hat;
          r_hat := !r_hat + vn1;
          if !r_hat >= base then continue_adjust := false
        end
        else continue_adjust := false
      done;
      (* Multiply and subtract: u[j..j+n] -= q_hat * v *)
      let borrow = ref 0 in
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!q_hat * v.(i)) + !carry in
        carry := p lsr base_bits;
        let s = u.(i + j) - (p land mask) - !borrow in
        if s < 0 then begin
          u.(i + j) <- s + base;
          borrow := 1
        end
        else begin
          u.(i + j) <- s;
          borrow := 0
        end
      done;
      let s = u.(j + n) - !carry - !borrow in
      if s < 0 then begin
        (* q_hat was one too large: add v back. *)
        u.(j + n) <- s + base;
        decr q_hat;
        let carry = ref 0 in
        for i = 0 to n - 1 do
          let t = u.(i + j) + v.(i) + !carry in
          u.(i + j) <- t land mask;
          carry := t lsr base_bits
        done;
        u.(j + n) <- (u.(j + n) + !carry) land mask
      end
      else u.(j + n) <- s;
      if j < Array.length q then q.(j) <- !q_hat
    done;
    (* Denormalize remainder. *)
    let r = Array.sub u 0 n in
    let rem =
      if sh = 0 then r
      else begin
        let out = Array.make n 0 in
        let carry = ref 0 in
        for i = n - 1 downto 0 do
          let v = (!carry lsl base_bits) lor r.(i) in
          out.(i) <- v lsr sh;
          carry := v land ((1 lsl sh) - 1)
        done;
        out
      end
    in
    (q, rem)
  end

(* Truncated division (round toward zero), like OCaml's (/) and (mod). *)
let divmod a b =
  if b.sign = 0 then raise Division_by_zero
  else if a.sign = 0 then (zero, zero)
  else if cmp_mag a.mag b.mag < 0 then (zero, a)
  else begin
    let qm, rm = divmod_mag a.mag b.mag in
    let q = normalize (a.sign * b.sign) qm in
    let r = normalize a.sign rm in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd_pos a b = if is_zero b then a else gcd_pos b (rem a b)

let gcd a b =
  let a = abs a and b = abs b in
  if is_zero a then b else if is_zero b then a else gcd_pos a b

let to_int_opt t =
  (* Fits in a native int iff magnitude < 2^62 and the value is in range. *)
  if t.sign = 0 then Some 0
  else if Array.length t.mag > 3 then None
  else begin
    let v =
      Array.to_list t.mag
      |> List.rev
      |> List.fold_left (fun acc limb -> (acc * base) + limb) 0
    in
    if v < 0 then None (* overflowed 63-bit int *)
    else Some (t.sign * v)
  end

let to_int_exn t =
  match to_int_opt t with
  | Some v -> v
  | None -> failwith "Bigint.to_int_exn: overflow"

let to_float t =
  let m = ref 0.0 in
  for i = Array.length t.mag - 1 downto 0 do
    m := (!m *. float_of_int base) +. float_of_int t.mag.(i)
  done;
  float_of_int t.sign *. !m

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    let rec go mag =
      if Array.length mag = 0 then ()
      else begin
        let q, r = divmod_mag_limb mag 1_000_000_000 in
        let q = normalize 1 q in
        if is_zero q then Buffer.add_string buf (string_of_int r)
        else begin
          go q.mag;
          Buffer.add_string buf (Printf.sprintf "%09d" r)
        end
      end
    in
    go t.mag;
    (if t.sign < 0 then "-" else "") ^ Buffer.contents buf
  end

let of_string s =
  let s = String.trim s in
  if s = "" then invalid_arg "Bigint.of_string: empty";
  let neg, start = if s.[0] = '-' then (true, 1) else if s.[0] = '+' then (false, 1) else (false, 0) in
  let acc = ref zero in
  let ten = of_int 10 in
  for i = start to String.length s - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit";
    acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
  done;
  if neg then { !acc with sign = - !acc.sign } else !acc

let pp ppf t = Fmt.string ppf (to_string t)

let hash t = Hashtbl.hash (t.sign, t.mag)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
