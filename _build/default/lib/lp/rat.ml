(* Exact rational arithmetic over [Bigint].

   Invariants: denominator > 0; gcd(num, den) = 1; zero is 0/1. *)

type t = { num : Bigint.t; den : Bigint.t }

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  let num, den =
    if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den) else (num, den)
  in
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let g = Bigint.gcd num den in
    { num = Bigint.div num g; den = Bigint.div den g }
  end

let zero = { num = Bigint.zero; den = Bigint.one }
let one = { num = Bigint.one; den = Bigint.one }
let minus_one = { num = Bigint.minus_one; den = Bigint.one }

let of_bigint n = { num = n; den = Bigint.one }
let of_int i = of_bigint (Bigint.of_int i)
let of_ints num den = make (Bigint.of_int num) (Bigint.of_int den)

let num t = t.num
let den t = t.den

let is_zero t = Bigint.is_zero t.num
let sign t = Bigint.sign t.num

let neg t = { t with num = Bigint.neg t.num }

let add a b =
  make
    (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
    (Bigint.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)

let inv t =
  if is_zero t then raise Division_by_zero;
  make t.den t.num

let div a b = mul a (inv b)

let compare a b =
  Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let abs t = if sign t < 0 then neg t else t

let is_integer t = Bigint.equal t.den Bigint.one

(* Floor division of num by den (rounding toward -infinity). *)
let floor t =
  let q, r = Bigint.divmod t.num t.den in
  if Bigint.sign r < 0 then Bigint.sub q Bigint.one else q

let ceil t = Bigint.neg (floor (neg t))

let to_float t = Bigint.to_float t.num /. Bigint.to_float t.den

let pow2 e =
  let two = Bigint.of_int 2 in
  let rec go acc n = if n = 0 then acc else go (Bigint.mul acc two) (n - 1) in
  go Bigint.one e

(* Exact conversion: every finite float is a dyadic rational. *)
let of_float f =
  if Float.is_integer f && Float.abs f < 1e15 then of_int (int_of_float f)
  else begin
    let m, e = Float.frexp f in
    (* f = m * 2^e with 0.5 <= |m| < 1; scale mantissa to an integer. *)
    let m53 = Int64.of_float (m *. 9007199254740992.0) (* 2^53 *) in
    let num = Bigint.of_string (Int64.to_string m53) in
    let e = e - 53 in
    if e >= 0 then of_bigint (Bigint.mul num (pow2 e))
    else make num (pow2 (-e))
  end

let to_string t =
  if is_integer t then Bigint.to_string t.num
  else Bigint.to_string t.num ^ "/" ^ Bigint.to_string t.den

let pp ppf t = Fmt.string ppf (to_string t)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
