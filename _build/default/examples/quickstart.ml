(* Quickstart: compile a small Nova program with the ILP register
   allocator, print the generated micro-engine assembly, and execute it
   on the cycle simulator.

   Run with:  dune exec examples/quickstart.exe *)

let program =
  {|
// Extract two header fields from a packed word pair in SRAM, combine
// them, and store the result.

layout pair = { tag : 8, len : 24, body : 32 };

fun main () : word {
  let (w0, w1) = sram(64);
  let u = unpack[pair]((w0, w1));
  let mixed = (u.tag << 4) ^ u.len + (u.body & 0xFF);
  sram(128) <- (mixed, u.body);
  mixed
}
|}

let () =
  Fmt.pr "=== Nova source ===@.%s@." program;
  (* Compile: parse -> typecheck -> CPS -> ILP allocation -> physical code *)
  let compiled = Regalloc.Driver.compile ~file:"quickstart.nova" program in
  let stats = compiled.Regalloc.Driver.stats in
  Fmt.pr "=== Compilation ===@.";
  Fmt.pr "virtual instructions: %d@." stats.Regalloc.Driver.virtual_insns;
  (match stats.Regalloc.Driver.mip with
  | Some m ->
      Fmt.pr "ILP model: %d variables, %d constraints (presolved to %d x %d)@."
        m.Lp.Mip.vars_before m.Lp.Mip.rows_before m.Lp.Mip.vars_after
        m.Lp.Mip.rows_after;
      Fmt.pr "solve time: %.2fs root, %.2fs total, %d nodes@."
        m.Lp.Mip.root_time m.Lp.Mip.total_time m.Lp.Mip.nodes
  | None -> ());
  Fmt.pr "inter-bank moves inserted: %d, spills: %d@.@."
    stats.Regalloc.Driver.moves_inserted stats.Regalloc.Driver.spills_inserted;
  Fmt.pr "=== Micro-engine assembly ===@.%s@."
    (Ixp.Asm.program_to_string compiled.Regalloc.Driver.physical);
  (* Execute on the simulator with some packet data preloaded. *)
  let cycles, results, _sim =
    Regalloc.Driver.simulate
      ~init:(fun sim ->
        let mem = Ixp.Simulator.shared_memory sim in
        Ixp.Memory.load_words mem Ixp.Insn.Sram ~word_offset:16
          [| 0xAB001234; 0xCAFEF00D |])
      compiled
  in
  Fmt.pr "=== Simulation ===@.";
  Fmt.pr "ran in %d cycles (%.2f us at 233 MHz)@." cycles
    (float_of_int cycles /. 233.);
  Fmt.pr "result word: 0x%08X@." results.(0);
  (* Cross-check against the reference CPS interpreter. *)
  let interp_result, _ =
    Regalloc.Driver.interpret
      ~init:(fun st ->
        Ixp.Memory.load_words (Cps.Interp.memory st) Ixp.Insn.Sram
          ~word_offset:16
          [| 0xAB001234; 0xCAFEF00D |])
      compiled
  in
  Fmt.pr "interpreter agrees: %b@."
    (match interp_result with [ v ] -> v = results.(0) | _ -> false)
