examples/aes_pipeline.ml: Array Fmt Ixp Lp Nova Regalloc Workloads
