examples/nat_gateway.ml: Array Fmt Ixp Nova Regalloc Workloads
