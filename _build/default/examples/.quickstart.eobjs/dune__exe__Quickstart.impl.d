examples/quickstart.ml: Array Cps Fmt Ixp Lp Regalloc
