examples/quickstart.mli:
