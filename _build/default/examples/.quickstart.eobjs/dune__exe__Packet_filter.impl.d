examples/packet_filter.ml: Array Fmt Ixp Regalloc
