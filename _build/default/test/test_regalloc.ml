(* Integration tests for the ILP register allocator: model generation,
   the §9 SSA/SSU impossibility examples, solution validity, emission,
   and end-to-end simulator-vs-interpreter equivalence. *)

module Insn = Ixp.Insn

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let compile ?(options = Regalloc.Driver.default_options) src =
  Regalloc.Driver.compile ~options ~file:"test.nova" src

(* run compiled code on the simulator and the CPS interpreter; both must
   agree on the result words *)
let check_equivalence ?(init_sram = [||]) ?(label = "equivalence") src =
  let c = compile src in
  let interp_result, _ =
    Regalloc.Driver.interpret
      ~init:(fun st ->
        Array.iteri
          (fun i v -> Ixp.Memory.poke (Cps.Interp.memory st) Insn.Sram (25 + i) v)
          init_sram)
      c
  in
  let _, sim_results, _ =
    Regalloc.Driver.simulate
      ~init:(fun sim ->
        Array.iteri
          (fun i v ->
            Ixp.Memory.poke (Ixp.Simulator.shared_memory sim) Insn.Sram (25 + i) v)
          init_sram)
      c
  in
  List.iteri
    (fun i v -> checki (Printf.sprintf "%s[%d]" label i) v sim_results.(i))
    interp_result;
  c

(* ---------------- whole-pipeline equivalence ---------------- *)

let test_alloc_arith () =
  ignore (check_equivalence "fun main () : word { (3 + 4) * 5 - 6 }")

let test_alloc_loop_and_memory () =
  let c =
    check_equivalence ~init_sram:[| 10; 20; 30; 40 |]
      {|
fun main () : word {
  let (a, b, c, d) = sram(100);
  var acc = 0;
  var i = 0;
  while (i < 3) {
    acc := acc + a + b - c;
    i := i + 1;
  }
  sram(200) <- (acc, d);
  acc + d
}
|}
  in
  checki "no spills" 0 c.Regalloc.Driver.stats.Regalloc.Driver.spills_inserted

let test_alloc_aggregate_pressure () =
  (* two 4-word reads whose values overlap: the first read's values must
     vacate the transfer bank (the paper's §2.1 mini-IXP example) *)
  ignore
    (check_equivalence
       ~init_sram:[| 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 |]
       {|
fun main () : word {
  let (u, v, w, x) = sram(100);
  let (e, f, g, h) = sram(116);
  let (i, j, k, l) = sram(132);
  sram(200) <- (u, e, i, x);
  sram(216) <- (v, f, j, w);
  (u + e + i) * 1000 + (g + h + k + l)
}
|})

let test_alloc_write_conflict_needs_clone () =
  (* same temporary at two different positions of two stores: impossible
     without cloning (§9's write-side example) *)
  ignore
    (check_equivalence ~init_sram:[| 7; 8; 9; 10 |]
       {|
fun main () : word {
  let (x, a, b) = sram(100);
  let (c, _d, _e) = sram(112);
  sram(200) <- (x, a, b, c);
  sram(216) <- (a, x, b, c);
  x
}
|})

let test_alloc_hash_same_reg () =
  ignore
    (check_equivalence ~init_sram:[| 0xBEEF |]
       {|
fun main () : word {
  let v = sram(100, 1);
  let h = hash(v);
  h & 0xFFFF
}
|})

let test_alloc_exceptions_and_control () =
  ignore
    (check_equivalence ~init_sram:[| 42 |]
       {|
fun f (e : exn([v : word]), x : word) : word {
  if (x > 100) { raise e [v = x]; }
  x + 1
}
fun main () : word {
  let a = sram(100, 1);
  try { f(Big, a) + f(Big2, a * 10) }
  handle Big [v] { v }
  handle Big2 [v] { v - 1 }
}
|})

(* ---------------- machine validity ---------------- *)

let test_checker_runs_on_output () =
  let c =
    compile
      {|
fun main () : word {
  let (a, b) = sram(100);
  sdram(0) <- (a, b);
  a ^ b
}
|}
  in
  checki "no checker violations" 0
    (List.length (Ixp.Checker.check c.Regalloc.Driver.physical))

let test_assignment_validates () =
  let c =
    compile
      {|
fun main () : word {
  let (a, b, c, d) = sram(64);
  let s = a + b;
  let t = c + d;
  sram(128) <- (s, t);
  s * t
}
|}
  in
  checkb "assignment valid" true
    (Regalloc.Assignment.validate c.Regalloc.Driver.assignment = [])

(* ---------------- §9: SSA makes colorings consistent ---------------- *)

let test_ssa_makes_coloring_feasible () =
  (* The paper's §9 example: (a,b,X,Y) <- sram(..); (Y,X,u,v) <- sram(..)
     has no consistent coloring pre-SSA.  Our pipeline is SSA by
     construction, so the Nova equivalent (rebinding names) compiles. *)
  ignore
    (check_equivalence ~init_sram:(Array.init 8 (fun i -> i * 3))
       {|
fun main () : word {
  let (a, b, x, y) = sram(100);
  let (y2, x2, u, v) = sram(116);
  (a + b + x + y) * 10000 + (y2 + x2 + u + v)
}
|})

(* ---------------- baseline allocator ---------------- *)

let test_baseline_allocates_and_agrees () =
  let options =
    {
      Regalloc.Driver.default_options with
      allocator = Regalloc.Driver.Baseline_allocator;
    }
  in
  let src =
    {|
fun main () : word {
  let (a, b, c) = sram(100);
  let s = a + b;
  sram(200) <- (s, c);
  s - c
}
|}
  in
  let c = compile ~options src in
  checki "baseline passes the machine checker" 0
    (List.length (Ixp.Checker.check c.Regalloc.Driver.physical));
  let interp_result, _ =
    Regalloc.Driver.interpret
      ~init:(fun st ->
        Array.iteri
          (fun i v -> Ixp.Memory.poke (Cps.Interp.memory st) Insn.Sram (25 + i) v)
          [| 5; 6; 7 |])
      c
  in
  let _, sim_results, _ =
    Regalloc.Driver.simulate
      ~init:(fun sim ->
        Array.iteri
          (fun i v ->
            Ixp.Memory.poke (Ixp.Simulator.shared_memory sim) Insn.Sram (25 + i) v)
          [| 5; 6; 7 |])
      c
  in
  List.iteri (fun i v -> checki "baseline result" v sim_results.(i)) interp_result

let test_ilp_beats_baseline () =
  let src =
    {|
fun main () : word {
  let (a, b, c, d) = sram(100);
  var acc = 0;
  var i = 0;
  while (i < 10) {
    acc := acc + a + b + c + d;
    i := i + 1;
  }
  acc
}
|}
  in
  let ilp = compile src in
  let base =
    compile
      ~options:
        {
          Regalloc.Driver.default_options with
          allocator = Regalloc.Driver.Baseline_allocator;
        }
      src
  in
  checkb "ILP cost <= baseline cost" true
    (ilp.Regalloc.Driver.stats.Regalloc.Driver.weighted_move_cost
    <= base.Regalloc.Driver.stats.Regalloc.Driver.weighted_move_cost +. 1e-6)

(* ---------------- model statistics ---------------- *)

let test_model_stats () =
  let front =
    Regalloc.Driver.front_end ~file:"t.nova"
      {|
fun main () : word {
  let (a, b, c, d) = sram(100);
  let (e, f) = sdram(0);
  sram(200) <- (a, b);
  sdram(8) <- (c & e, d & f);
  0
}
|}
  in
  let mg = Regalloc.Modelgen.build front.Regalloc.Driver.f_graph in
  let c = Regalloc.Modelgen.coloring_stats mg in
  checki "DefL members" 4 c.Regalloc.Modelgen.def_l;
  checki "DefLD members" 2 c.Regalloc.Modelgen.def_ld;
  (* 2 from the sram store + 1 from the scratch write of main's result *)
  checki "UseS members" 3 c.Regalloc.Modelgen.use_s;
  checki "UseSD members" 2 c.Regalloc.Modelgen.use_sd

let test_spill_fallback () =
  (* enormous register pressure: 20 values live across a loop forces the
     two-phase driver into the spill-enabled model or heavy B moves; the
     result must still validate and agree. *)
  let src =
    {|
fun main () : word {
  let (a1, a2, a3, a4, a5, a6, a7, a8) = sram(0, 8);
  let (b1, b2, b3, b4, b5, b6, b7, b8) = sram(32, 8);
  let (c1, c2, c3, c4, c5, c6, c7, c8) = sram(64, 8);
  let (d1, d2, d3, d4, d5, d6, d7, d8) = sram(96, 8);
  var acc = 0;
  var i = 0;
  while (i < 2) {
    acc := acc + a1 + a2 + a3 + a4 + a5 + a6 + a7 + a8;
    acc := acc + b1 + b2 + b3 + b4 + b5 + b6 + b7 + b8;
    acc := acc + c1 + c2 + c3 + c4 + c5 + c6 + c7 + c8;
    acc := acc + d1 + d2 + d3 + d4 + d5 + d6 + d7 + d8;
    i := i + 1;
  }
  acc
}
|}
  in
  let c = compile src in
  checki "machine-checked" 0
    (List.length (Ixp.Checker.check c.Regalloc.Driver.physical));
  let init st =
    for i = 0 to 31 do
      Ixp.Memory.poke (Cps.Interp.memory st) Insn.Sram i (i * 7)
    done
  in
  let interp_result, _ = Regalloc.Driver.interpret ~init c in
  let _, sim_results, _ =
    Regalloc.Driver.simulate
      ~init:(fun sim ->
        for i = 0 to 31 do
          Ixp.Memory.poke (Ixp.Simulator.shared_memory sim) Insn.Sram i (i * 7)
        done)
      c
  in
  List.iteri (fun i v -> checki "high-pressure result" v sim_results.(i))
    interp_result

let test_fifo_and_csr_path () =
  (* the receive/transmit harness instructions: rfifo -> sdram -> tfifo,
     with csr reads and a voluntary thread swap *)
  let src =
    {|
fun main () : word {
  let me = csr(ctx);
  let (w0, w1, w2, w3) = rfifo(0, 4);
  sdram(64) <- (w0, w1, w2, w3);
  ctx_arb();
  let (r0, r1) = sdram(64);
  tfifo(0) <- (r0 ^ me, r1);
  csr(status) <- r0;
  r0 + r1
}
|}
  in
  let c = compile src in
  checki "machine-legal" 0
    (List.length (Ixp.Checker.check c.Regalloc.Driver.physical));
  let packet = [| 0xAA; 0xBB; 0xCC; 0xDD |] in
  let sim = Ixp.Simulator.create c.Regalloc.Driver.physical in
  Ixp.Simulator.set_rfifo sim ~thread:0 packet;
  ignore (Ixp.Simulator.run_single sim);
  let out = Ixp.Simulator.read_tfifo sim ~thread:0 in
  checki "tfifo words" 2 (Array.length out);
  checki "tfifo[0]" 0xAA out.(0);
  checki "tfifo[1]" 0xBB out.(1);
  (* interpreter agrees on the result *)
  let interp_result, _ =
    Regalloc.Driver.interpret
      ~init:(fun st -> st.Cps.Interp.rfifo <- packet)
      c
  in
  checkb "result agrees" true (interp_result = [ 0xAA + 0xBB ])

(* ---------------- §12 rematerialization ---------------- *)

let test_rematerialization () =
  let src =
    {|
fun main () : word {
  var acc = 0;
  var i = 0;
  while (i < 6) {
    acc := (acc + 0xDEAD01) ^ (i * 0xBEEF02);
    i := i + 1;
  }
  acc
}
|}
  in
  let plain = compile src in
  let remat =
    compile
      ~options:
        { Regalloc.Driver.default_options with rematerialize = true }
      src
  in
  (* identical semantics *)
  let run c =
    let _, results, _ = Regalloc.Driver.simulate c in
    results.(0)
  in
  checki "same result" (run plain) (run remat);
  checki "remat passes the checker" 0
    (List.length (Ixp.Checker.check remat.Regalloc.Driver.physical));
  (* the rematerialized version must not be slower: the constants stay
     in registers across the loop instead of being re-materialized *)
  let cycles c =
    let sim = Ixp.Simulator.create c.Regalloc.Driver.physical in
    Ixp.Simulator.run_single sim
  in
  checkb "remat not slower" true (cycles remat <= cycles plain)

let suites =
  [
    ( "regalloc.pipeline",
      [
        Alcotest.test_case "arith" `Quick test_alloc_arith;
        Alcotest.test_case "loop + memory" `Quick test_alloc_loop_and_memory;
        Alcotest.test_case "aggregate pressure" `Quick
          test_alloc_aggregate_pressure;
        Alcotest.test_case "write conflicts (clones)" `Quick
          test_alloc_write_conflict_needs_clone;
        Alcotest.test_case "hash same-reg" `Quick test_alloc_hash_same_reg;
        Alcotest.test_case "exceptions" `Quick test_alloc_exceptions_and_control;
        Alcotest.test_case "ssa coloring feasible" `Quick
          test_ssa_makes_coloring_feasible;
        Alcotest.test_case "high pressure" `Slow test_spill_fallback;
      ] );
    ( "regalloc.validity",
      [
        Alcotest.test_case "checker clean" `Quick test_checker_runs_on_output;
        Alcotest.test_case "assignment valid" `Quick test_assignment_validates;
        Alcotest.test_case "model stats" `Quick test_model_stats;
      ] );
    ( "regalloc.hardware",
      [ Alcotest.test_case "fifo + csr + ctx_arb" `Quick test_fifo_and_csr_path ] );
    ( "regalloc.remat",
      [ Alcotest.test_case "constants via bank C" `Quick test_rematerialization ] );
    ( "regalloc.baseline",
      [
        Alcotest.test_case "baseline valid + agrees" `Quick
          test_baseline_allocates_and_agrees;
        Alcotest.test_case "ilp beats baseline" `Quick test_ilp_beats_baseline;
      ] );
  ]
