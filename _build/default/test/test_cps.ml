(* Tests for the CPS middle end: conversion, optimizer, SSA/SSU
   invariants, de-proceduralization, instruction selection -- validated
   chiefly by interpreter equivalence across phases. *)

open Support

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let to_cps ?(entry_args = []) src =
  let prog = Nova.Parser.parse_string ~file:"t.nova" src in
  let tprog = Nova.Typecheck.check_program prog in
  Cps.Convert.convert_program ~entry_args tprog

let run_with ?(sram = [||]) term =
  let st = Cps.Interp.create () in
  let mem = Cps.Interp.memory st in
  Array.iteri (fun i v -> Ixp.Memory.poke mem Ixp.Insn.Sram (25 + i) v) sram;
  let r = Cps.Interp.run st Ident.Map.empty term in
  (r, st)

let result ?sram term = fst (run_with ?sram term)

(* every optimization stage preserves the interpreter's verdict *)
let stages term =
  [
    ("raw", term);
    ("contracted", Cps.Contract.simplify term);
    ("deproc", Cps.Deproc.run (Cps.Contract.simplify term));
    ("ssu", Cps.Ssu.run (Cps.Deproc.run (Cps.Contract.simplify term)));
  ]

let check_all_stages ?sram src expected =
  let term = to_cps src in
  List.iter
    (fun (name, t) ->
      Alcotest.(check (list int)) name expected (result ?sram t))
    (stages term)

(* ---------------- conversion + semantics ---------------- *)

let test_arith_program () =
  check_all_stages "fun main () : word { (3 + 4) * 2 - 1 }" [ 13 ]

let test_loop_program () =
  check_all_stages
    {|
fun main () : word {
  var acc = 0;
  var i = 1;
  while (i <= 10) { acc := acc + i; i := i + 1; }
  acc
}
|}
    [ 55 ]

let test_nested_loops_and_ifs () =
  check_all_stages
    {|
fun main () : word {
  var total = 0;
  var i = 0;
  while (i < 5) {
    var j = 0;
    while (j < 5) {
      if (((i ^ j) & 1) == 1) { total := total + 1; }
      else { total := total + 10; }
      j := j + 1;
    }
    i := i + 1;
  }
  total
}
|}
    (* (i^j)&1==1 in 12 of 25 cases -> 12*1 + 13*10 = 142 *)
    [ 142 ]

let test_function_inlining () =
  check_all_stages
    {|
fun square (x : word) : word { x * x }
fun cube (x : word) : word { x * square(x) }
fun main () : word { cube(3) + square(4) }
|}
    [ 43 ]

let test_tail_recursion_becomes_loop () =
  let src =
    {|
fun gcd (a : word, b : word) : word {
  if (b == 0) { a } else { gcd(b, a - (a / b?)) }
}
fun main () : word { 0 }
|}
  in
  ignore src;
  (* no division in Nova; use a subtraction-based gcd *)
  check_all_stages
    {|
fun gcd (a : word, b : word) : word {
  if (a == b) { a }
  else { if (a > b) { gcd(a - b, b) } else { gcd(a, b - a) } }
}
fun main () : word { gcd(48, 36) }
|}
    [ 12 ]

let test_exceptions () =
  check_all_stages
    {|
fun risky (e : exn([code : word]), x : word) : word {
  if (x > 10) { raise e [code = x]; }
  x * 2
}
fun main () : word {
  let a = try { risky(Overflow, 4) } handle Overflow [code] { code };
  let b = try { risky(Overflow2, 40) } handle Overflow2 [code] { code + 1 };
  a + b
}
|}
    [ 8 + 41 ]

let test_booleans_materialized () =
  check_all_stages
    {|
fun main () : word {
  let t = 3 < 5;
  let f = 3 > 5;
  var n = 0;
  if (t && !f) { n := 10; } else { n := 20; }
  let stored = t || f;
  if (stored) { n + 1 } else { n + 2 }
}
|}
    [ 11 ]

let test_memory_and_layout () =
  check_all_stages
    ~sram:[| 0x61234567; 0xDEADBEEF |]
    {|
layout h = { ver : 4, rest : 28, all : 32 };
fun main () : word {
  let (w0, w1) = sram(100);
  let u = unpack[h]((w0, w1));
  u.ver + (u.all & 0xFF)
}
|}
    [ 6 + 0xEF ]

let test_pack_roundtrip () =
  check_all_stages
    {|
layout h = { a : 12, b : 8, c : 12 };
fun main () : word {
  let p = pack[h] [a = 0xABC, b = 0xDE, c = 0xF01];
  let u = unpack[h](p);
  if (u.a == 0xABC && u.b == 0xDE && u.c == 0xF01) { p.0 } else { 0 }
}
|}
    [ 0xABCDEF01 ]

(* ---------------- optimizer-specific behaviour ---------------- *)

let test_constant_folding_shrinks () =
  let term = to_cps "fun main () : word { (2 + 3) * (4 + 5) }" in
  let opt = Cps.Contract.simplify term in
  checkb "folds to a constant program" true (Cps.Ir.size opt <= 2);
  Alcotest.(check (list int)) "value" [ 45 ] (result opt)

let test_dead_read_elimination () =
  (* only u.b used: the extraction of a and c must disappear, and the
     3-word read must shrink *)
  let src =
    {|
layout p = { a : 32, b : 32, c : 32 };
fun main () : word {
  let (w0, w1, w2) = sram(100);
  let u = unpack[p]((w0, w1, w2));
  u.b
}
|}
  in
  let term = Cps.Deproc.run (Cps.Contract.simplify (to_cps src)) in
  let read_sizes = ref [] in
  Cps.Ir.iter_terms
    (fun t ->
      match t with
      | Cps.Ir.MemRead (_, _, dsts, _) ->
          read_sizes := Array.length dsts :: !read_sizes
      | _ -> ())
    term;
  checkb "read trimmed to one word" true (!read_sizes = [ 1 ])

let test_useless_variable_elimination () =
  let src =
    {|
fun main () : word {
  let x = 1 + 2;
  let unused = x * 100;
  let unused2 = unused + 1;
  x
}
|}
  in
  let opt = Cps.Contract.simplify (to_cps src) in
  checkb "dead chain removed" true (Cps.Ir.size opt <= 2)

let test_ssa_holds_through_phases () =
  let term =
    to_cps
      {|
fun f (x : word) : word { x + 1 }
fun main () : word {
  var a = 0;
  var i = 0;
  while (i < 3) { a := f(a); i := i + 1; }
  a
}
|}
  in
  List.iter
    (fun (name, t) ->
      match Cps.Ir.check_ssa t with
      | Ok () -> ()
      | Error e -> Alcotest.fail (name ^ ": " ^ e))
    (stages term)

(* ---------------- SSU ---------------- *)

let count_clones term =
  let n = ref 0 in
  Cps.Ir.iter_terms
    (fun t -> match t with Cps.Ir.Clone _ -> incr n | _ -> ())
    term;
  !n

(* count write-side uses per variable; after SSU each must be the sole
   use of its variable *)
let ssu_invariant_holds term =
  let writes = Ident.Tbl.create 16 and others = Ident.Tbl.create 64 in
  let bump tbl x =
    Ident.Tbl.replace tbl x (1 + Option.value ~default:0 (Ident.Tbl.find_opt tbl x))
  in
  let wv = function Cps.Ir.Var x -> bump writes x | Cps.Ir.Int _ -> () in
  let ov = function Cps.Ir.Var x -> bump others x | Cps.Ir.Int _ -> () in
  Cps.Ir.iter_terms
    (fun t ->
      match t with
      | Cps.Ir.MemWrite (_, a, vs, _) | Cps.Ir.TfifoWrite (a, vs, _) ->
          ov a;
          Array.iter wv vs
      | Cps.Ir.Hash (_, v, _) -> wv v
      | Cps.Ir.BitTestSet (_, a, v, _) ->
          ov a;
          wv v
      | Cps.Ir.Prim (_, _, vs, _) -> List.iter ov vs
      | Cps.Ir.MemRead (_, a, _, _) | Cps.Ir.RfifoRead (a, _, _) -> ov a
      | Cps.Ir.CsrWrite (_, v, _) -> ov v
      | Cps.Ir.Branch (_, a, b, _, _) ->
          ov a;
          ov b
      | Cps.Ir.App (f, vs) ->
          ov f;
          List.iter ov vs
      | Cps.Ir.Halt vs -> List.iter ov vs
      | Cps.Ir.Clone _ -> () (* the defining copy is not a use *)
      | _ -> ())
    term;
  Ident.Tbl.fold
    (fun x w ok ->
      ok
      && w = 1
      && Option.value ~default:0 (Ident.Tbl.find_opt others x) = 0)
    writes true

let test_ssu_single_use () =
  (* x stored twice and used once more: needs clones (the paper's §2.1
     motivating example) *)
  let src =
    {|
fun main () : word {
  let (x, a, b) = sram(100);
  let (c, y, z) = sram(200);
  sram(300) <- (a, y, x, b);
  sram(400) <- (z, x, b, c);
  x
}
|}
  in
  let before = Cps.Deproc.run (Cps.Contract.simplify (to_cps src)) in
  checkb "invariant does not hold before" false (ssu_invariant_holds before);
  let after = Cps.Ssu.run before in
  checkb "clones inserted" true (count_clones after > 0);
  checkb "invariant holds after" true (ssu_invariant_holds after);
  Alcotest.(check (list int)) "semantics preserved" (result before)
    (result after)

let test_ssu_noop_when_single_use () =
  let src =
    {|
fun main () : word {
  let x = 5; let y = 7;
  sram(100) <- (x, y);
  1
}
|}
  in
  let before = Cps.Deproc.run (Cps.Contract.simplify (to_cps src)) in
  let after = Cps.Ssu.run before in
  checki "no clones needed" 0 (count_clones after)

(* ---------------- isel ---------------- *)

let test_isel_structure () =
  let src =
    {|
fun main () : word {
  var acc = 0;
  var i = 0;
  while (i < 4) { acc := acc + i; i := i + 1; }
  acc
}
|}
  in
  let term = Cps.Ssu.run (Cps.Deproc.run (Cps.Contract.simplify (to_cps src))) in
  let g = Cps.Isel.run term in
  checkb "has entry" true
    (match Ixp.Flowgraph.entry g with b -> b.Ixp.Flowgraph.label = "entry");
  (* all jump targets resolve *)
  Ixp.Flowgraph.iter_blocks
    (fun b ->
      List.iter
        (fun l -> ignore (Ixp.Flowgraph.block g l))
        (Ixp.Insn.term_targets b.Ixp.Flowgraph.term))
    g;
  (* exactly one halt *)
  let halts = ref 0 in
  Ixp.Flowgraph.iter_blocks
    (fun b -> if b.Ixp.Flowgraph.term = Ixp.Insn.Halt then incr halts)
    g;
  checkb "has halt" true (!halts >= 1)

let test_isel_rejects_higher_order_leftovers () =
  (* an App to an unknown variable must raise *)
  let v = Ident.fresh "f" in
  let t = Cps.Ir.App (Cps.Ir.Var v, []) in
  checkb "isel error" true
    (try
       ignore (Cps.Isel.run t);
       false
     with Cps.Isel.Isel_error _ -> true)

(* parallel moves: jumps with swapped arguments must be sequenced
   correctly (exercised through semantics) *)
let test_parallel_move_swap () =
  check_all_stages
    {|
fun main () : word {
  var a = 1;
  var b = 2;
  var i = 0;
  while (i < 3) {
    let t = a;
    a := b;
    b := t;
    i := i + 1;
  }
  (a << 4) | b
}
|}
    [ 0x21 ]

let suites =
  [
    ( "cps.semantics",
      [
        Alcotest.test_case "arithmetic" `Quick test_arith_program;
        Alcotest.test_case "loops" `Quick test_loop_program;
        Alcotest.test_case "nested control" `Quick test_nested_loops_and_ifs;
        Alcotest.test_case "function inlining" `Quick test_function_inlining;
        Alcotest.test_case "tail recursion" `Quick
          test_tail_recursion_becomes_loop;
        Alcotest.test_case "exceptions" `Quick test_exceptions;
        Alcotest.test_case "booleans" `Quick test_booleans_materialized;
        Alcotest.test_case "memory + layout" `Quick test_memory_and_layout;
        Alcotest.test_case "pack roundtrip" `Quick test_pack_roundtrip;
        Alcotest.test_case "parallel move swap" `Quick test_parallel_move_swap;
      ] );
    ( "cps.optimizer",
      [
        Alcotest.test_case "constant folding" `Quick
          test_constant_folding_shrinks;
        Alcotest.test_case "memory read trimming" `Quick
          test_dead_read_elimination;
        Alcotest.test_case "useless variables" `Quick
          test_useless_variable_elimination;
        Alcotest.test_case "ssa through phases" `Quick
          test_ssa_holds_through_phases;
      ] );
    ( "cps.ssu",
      [
        Alcotest.test_case "single use enforced" `Quick test_ssu_single_use;
        Alcotest.test_case "no-op when single" `Quick test_ssu_noop_when_single_use;
      ] );
    ( "cps.isel",
      [
        Alcotest.test_case "structure" `Quick test_isel_structure;
        Alcotest.test_case "rejects unknown targets" `Quick
          test_isel_rejects_higher_order_leftovers;
      ] );
  ]
