(* Remaining corners: diagnostics, source locations, the LP-format
   writer, interpreter guards, frequency on irreducible graphs, and the
   AMPL dataset printer. *)

open Support
module Insn = Ixp.Insn
module FG = Ixp.Flowgraph

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let is_infix ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* ---------------- diagnostics and locations ---------------- *)

let test_diag_formatting () =
  match
    Diag.protect (fun () ->
        Diag.error
          ~loc:
            (Srcloc.make ~file:"foo.nova"
               ~start_pos:{ Srcloc.line = 3; col = 7; offset = 42 }
               ~end_pos:{ Srcloc.line = 3; col = 9; offset = 44 })
          "bad %s" "thing")
  with
  | Ok _ -> Alcotest.fail "no error raised"
  | Error d ->
      let s = Diag.to_string d in
      checkb "mentions file" true (is_infix ~affix:"foo.nova:3.7-9" s);
      checkb "mentions message" true (is_infix ~affix:"bad thing" s)

let test_parse_error_has_location () =
  match
    Diag.protect (fun () ->
        Nova.Parser.parse_string ~file:"err.nova" "fun f () {\n  let x = ;\n}")
  with
  | Ok _ -> Alcotest.fail "accepted"
  | Error d ->
      checkb "line 2" true (is_infix ~affix:"err.nova:2" (Diag.to_string d))

(* ---------------- LP-format writer ---------------- *)

let test_lp_format_sections () =
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_binary p ~obj:2. "x" in
  let y = Lp.Problem.add_var p ~lo:0. ~hi:10. ~obj:(-1.) "y" in
  Lp.Problem.add_row p ~name:"cap" Lp.Problem.Le 5. [ (x, 1.); (y, 1.) ];
  let s = Lp.Lp_format.to_string p in
  List.iter
    (fun sec -> checkb sec true (is_infix ~affix:sec s))
    [ "Minimize"; "Subject To"; "Bounds"; "Binaries"; "End"; "cap:" ]

(* ---------------- interpreter guards ---------------- *)

let test_interp_step_limit () =
  let f = Ident.fresh "f" in
  let loop =
    Cps.Ir.Fix
      ( [ { Cps.Ir.name = f; params = []; kind = Cps.Ir.Cont;
            body = Cps.Ir.App (Cps.Ir.Var f, []) } ],
        Cps.Ir.App (Cps.Ir.Var f, []) )
  in
  checkb "diverging program hits the step limit" true
    (try
       ignore (Cps.Interp.run_term ~max_steps:1000 loop);
       false
     with Cps.Interp.Interp_error _ -> true)

let test_interp_memory_fault () =
  let x = Ident.fresh "x" in
  let t =
    Cps.Ir.MemRead
      (Nova.Ast.Sram, Cps.Ir.Int 2 (* misaligned *), [| x |], Cps.Ir.Halt [])
  in
  checkb "misaligned read faults" true
    (try
       ignore (Cps.Interp.run_term t);
       false
     with Ixp.Memory.Fault _ -> true)

(* ---------------- frequency on an irreducible graph ---------------- *)

let test_frequency_irreducible () =
  (* two blocks jumping into each other's middle: classic irreducible
     shape; the estimator must terminate and give finite weights *)
  let g = FG.create () in
  let x = Ident.fresh "x" in
  ignore
    (FG.add_block g ~label:"entry" ~insns:[ Insn.Imm { dst = x; value = 0 } ]
       ~term:
         (Insn.Branch
            { cond = Insn.Eq; x; y = Insn.Lit 0; ifso = "a"; ifnot = "b" }));
  ignore
    (FG.add_block g ~label:"a" ~insns:[]
       ~term:
         (Insn.Branch
            { cond = Insn.Ne; x; y = Insn.Lit 1; ifso = "b"; ifnot = "out" }));
  ignore
    (FG.add_block g ~label:"b" ~insns:[]
       ~term:
         (Insn.Branch
            { cond = Insn.Ne; x; y = Insn.Lit 2; ifso = "a"; ifnot = "out" }));
  ignore (FG.add_block g ~label:"out" ~insns:[] ~term:Insn.Halt);
  let freq = Ixp.Frequency.compute g in
  List.iter
    (fun l ->
      let f = Ixp.Frequency.block_frequency freq l in
      checkb (l ^ " finite") true (Float.is_finite f && f >= 0.))
    [ "entry"; "a"; "b"; "out" ];
  checkb "cycle blocks hotter than entry" true
    (Ixp.Frequency.block_frequency freq "a" > 0.)

(* ---------------- AMPL dataset printer ---------------- *)

let test_dataset_dat_printer () =
  let d =
    Ampl.Dataset.of_list 2
      [ [ Ampl.Dataset.S "p1"; Ampl.Dataset.S "a" ];
        [ Ampl.Dataset.S "p2"; Ampl.Dataset.S "b" ] ]
  in
  let s = Fmt.str "%a" (Ampl.Dataset.pp_dat ~name:"Exists") d in
  checkb "set name" true (is_infix ~affix:"set Exists :=" s);
  checkb "tuple" true (is_infix ~affix:"(p1,a)" s)

(* ---------------- model summary printer ---------------- *)

let test_model_summary () =
  let m = Ampl.Model.create () in
  Ampl.Model.declare_binary_family m "Move"
    ~index:(Ampl.Dataset.of_ints [ 1; 2; 3 ]);
  let s = Fmt.str "%a" Ampl.Model.pp_summary m in
  checkb "mentions family" true (is_infix ~affix:"var Move {3 tuples} binary" s)

(* ---------------- vec / srcloc odds ---------------- *)

let test_srcloc_merge () =
  let mk l c o = { Srcloc.line = l; col = c; offset = o } in
  let a = Srcloc.make ~file:"f" ~start_pos:(mk 1 1 0) ~end_pos:(mk 1 5 4) in
  let b = Srcloc.make ~file:"f" ~start_pos:(mk 2 1 10) ~end_pos:(mk 2 8 17) in
  let m = Srcloc.merge a b in
  checki "start line" 1 (Srcloc.start_line m);
  checks "spans lines" "f:1.1-2.8" (Srcloc.to_string m)

let suites =
  [
    ( "misc",
      [
        Alcotest.test_case "diagnostic formatting" `Quick test_diag_formatting;
        Alcotest.test_case "parse error location" `Quick
          test_parse_error_has_location;
        Alcotest.test_case "lp format sections" `Quick test_lp_format_sections;
        Alcotest.test_case "interp step limit" `Quick test_interp_step_limit;
        Alcotest.test_case "interp memory fault" `Quick test_interp_memory_fault;
        Alcotest.test_case "irreducible frequency" `Quick
          test_frequency_irreducible;
        Alcotest.test_case "dataset .dat printer" `Quick test_dataset_dat_printer;
        Alcotest.test_case "model summary" `Quick test_model_summary;
        Alcotest.test_case "srcloc merge" `Quick test_srcloc_merge;
      ] );
  ]
