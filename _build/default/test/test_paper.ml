(* Fidelity tests against the paper's own worked examples. *)

module Insn = Ixp.Insn
module FG = Ixp.Flowgraph
module Bank = Ixp.Bank

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Figure 3: the sample program

     p1  let (a, b, c, d) = sram(100);
     p2  let (e, f, g, h, i, j) = sram(200);
     p3  let u = a + c;
     p4  let v = g + h;
     p5  sram(300) <- (b, e, v, u);
     p6  sram(500) <- (f, j, d, i);
     p7

   The paper's AMPL data: 7 program points, 12 temporaries, DefL4 and
   DefL6 entries, two DefABW entries, two Arith entries, two UseS4
   entries. *)
(* ------------------------------------------------------------------ *)

let fig3_source =
  {|
fun main () {
  let (a, b, c, d) = sram(100);
  let (e, f, g, h, i, j) = sram(200);
  let u = a + c;
  let v = g + h;
  sram(300) <- (b, e, v, u);
  sram(500) <- (f, j, d, i);
}
|}

let build_fig3 () =
  let front = Regalloc.Driver.front_end ~file:"fig3.nova" fig3_source in
  Regalloc.Modelgen.build front.Regalloc.Driver.f_graph

let test_fig3_sets () =
  let mg = build_fig3 () in
  (* aggregate definitions: one of size 4, one of size 6 *)
  let def_sizes =
    List.sort compare
      (List.map
         (fun (ad : Regalloc.Modelgen.agg_def) ->
           Array.length ad.Regalloc.Modelgen.ad_members)
         mg.Regalloc.Modelgen.agg_defs)
  in
  checkb "DefL4 and DefL6" true (def_sizes = [ 4; 6 ]);
  (* aggregate uses: two of size 4 *)
  let use_sizes =
    List.sort compare
      (List.map
         (fun (au : Regalloc.Modelgen.agg_use) ->
           Array.length au.Regalloc.Modelgen.au_members)
         mg.Regalloc.Modelgen.agg_uses)
  in
  checkb "two UseS4" true (use_sizes = [ 4; 4 ]);
  (* two ALU results (u and v), i.e. two DefABW entries *)
  checki "two DefABW" 2 (List.length mg.Regalloc.Modelgen.def_abw);
  (* two Arith operand pairs *)
  checki "two Arith" 2 (List.length mg.Regalloc.Modelgen.arith2)

let test_fig3_solution_shape () =
  (* From the paper's §2.1 discussion of this example: the second read
     needs four adjacent L registers while (a,b,c,d) still hold L -- wait,
     the 6-read fills 6 of 8, so the 4-read's values must mostly leave.
     What must hold in any valid solution: zero spills, and the final
     program passes the machine checker. *)
  let c = Regalloc.Driver.compile ~file:"fig3.nova" fig3_source in
  checki "no spills" 0 c.Regalloc.Driver.stats.Regalloc.Driver.spills_inserted;
  checki "machine-legal" 0
    (List.length (Ixp.Checker.check c.Regalloc.Driver.physical));
  (* and the stores really read adjacent S registers *)
  let writes = ref 0 in
  FG.iter_blocks
    (fun b ->
      Array.iter
        (fun insn ->
          match insn with
          | Insn.Write { srcs; _ } ->
              incr writes;
              Array.iteri
                (fun k r ->
                  if k > 0 then
                    checki "adjacent"
                      (Ixp.Reg.num srcs.(k - 1) + 1)
                      (Ixp.Reg.num r))
                srcs
          | _ -> ())
        b.FG.insns)
    c.Regalloc.Driver.physical;
  checkb "both stores present" true (!writes >= 2)

(* ------------------------------------------------------------------ *)
(* §2.1: the x-at-two-positions store conflict.                        *)
(* ------------------------------------------------------------------ *)

let test_store_position_conflict () =
  (* sram(addr1) <- (u, v, x, w);  sram(addr2) <- (a, x, b, c)
     x sits at position 2 and position 1: impossible without a clone;
     the compiled result must still be correct. *)
  let src =
    {|
fun main () : word {
  let (u, v, x, w) = sram(0, 4);
  let (a, b, c) = sram(16, 3);
  sram(100) <- (u, v, x, w);
  sram(200) <- (a, x, b, c);
  x
}
|}
  in
  let c = Regalloc.Driver.compile ~file:"conflict.nova" src in
  let init mem poke =
    Array.iteri (fun i v -> poke mem i v) [| 9; 8; 7; 6; 5; 4; 3 |]
  in
  let interp_result, ist =
    Regalloc.Driver.interpret
      ~init:(fun st ->
        init (Cps.Interp.memory st) (fun m i v -> Ixp.Memory.poke m Insn.Sram i v))
      c
  in
  let _, sim_results, sim =
    Regalloc.Driver.simulate
      ~init:(fun sim ->
        init (Ixp.Simulator.shared_memory sim) (fun m i v ->
            Ixp.Memory.poke m Insn.Sram i v))
      c
  in
  checki "returns x" (List.hd interp_result) sim_results.(0);
  (* both stores landed identically in both executions *)
  let imem = Cps.Interp.memory ist in
  let smem = Ixp.Simulator.shared_memory sim in
  for w = 25 to 28 do
    checki "store1 word" (Ixp.Memory.peek imem Insn.Sram w)
      (Ixp.Memory.peek smem Insn.Sram w)
  done;
  for w = 50 to 53 do
    checki "store2 word" (Ixp.Memory.peek imem Insn.Sram w)
      (Ixp.Memory.peek smem Insn.Sram w)
  done

(* ------------------------------------------------------------------ *)
(* §3.2: the lyt ## {n} alignment example.                             *)
(* ------------------------------------------------------------------ *)

let test_layout_alignment_example () =
  (* the same 56-bit layout at offsets 0, 16 and 24 within 3 words,
     dispatched at runtime -- each branch extracts different bits *)
  let src =
    {|
layout lyt = { x : 16, y : 32, z : 8 };

fun main (sel : word) : word {
  let (p0, p1, p2) = sram(100);
  let ux = if (sel == 0) {
    let u = unpack[lyt ## {40}]((p0, p1, p2));
    u.x
  } else { if (sel == 1) {
    let u = unpack[{16} ## lyt ## {24}]((p0, p1, p2));
    u.x
  } else {
    let u = unpack[{24} ## lyt ## {16}]((p0, p1, p2));
    u.x
  } };
  ux
}
|}
  in
  (* words chosen so each alignment extracts a distinct x *)
  let words = [| 0x11112222; 0x33334444; 0x55556666 |] in
  List.iter
    (fun (sel, expected) ->
      let prog = Nova.Parser.parse_string ~file:"t" src in
      let tprog = Nova.Typecheck.check_program prog in
      let term = Cps.Convert.convert_program ~entry_args:[ sel ] tprog in
      let st = Cps.Interp.create () in
      Array.iteri
        (fun i v -> Ixp.Memory.poke (Cps.Interp.memory st) Insn.Sram (25 + i) v)
        words;
      let r = Cps.Interp.run st Support.Ident.Map.empty term in
      checkb
        (Printf.sprintf "alignment %d" sel)
        true
        (r = [ expected ]))
    [ (0, 0x1111); (1, 0x2222); (2, 0x2233) ]

let suites =
  [
    ( "paper.figure3",
      [
        Alcotest.test_case "AMPL sets" `Quick test_fig3_sets;
        Alcotest.test_case "solution shape" `Quick test_fig3_solution_shape;
      ] );
    ( "paper.examples",
      [
        Alcotest.test_case "store position conflict" `Quick
          test_store_position_conflict;
        Alcotest.test_case "layout alignment dispatch" `Quick
          test_layout_alignment_example;
      ] );
  ]
