(* Tests for solution application: the A/B coloring phase, parallel-move
   sequencing (including cycles through the reserved A15), and the
   assembly printer. *)

module Bank = Ixp.Bank
module FG = Ixp.Flowgraph
module Insn = Ixp.Insn
module Reg = Ixp.Reg

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let compile src = Regalloc.Driver.compile ~file:"t.nova" src

(* ---------------- parallel moves / swaps ---------------- *)

let test_swap_cycle_through_spare () =
  (* a loop that swaps two values every iteration exercises the
     parallel-copy cycle breaker; semantic correctness is the witness *)
  let c =
    compile
      {|
fun main () : word {
  var a = 0x11;
  var b = 0x22;
  var c = 0x33;
  var i = 0;
  while (i < 5) {
    let t = a;
    a := b;
    b := c;
    c := t;
    i := i + 1;
  }
  (a << 16) | (b << 8) | c
}
|}
  in
  let _, results, _ = Regalloc.Driver.simulate c in
  (* 5 rotations of (11,22,33) = 2 net rotations: a=33,b=11,c=22 *)
  checki "rotated" ((0x33 lsl 16) lor (0x11 lsl 8) lor 0x22) results.(0)

(* the spare A15 must never be allocated to a value *)
let test_spare_a15_reserved () =
  let c =
    compile
      {|
fun main () : word {
  let (a, b, c, d, e, f, g, h) = sram(0, 8);
  let (i, j, k, l, m, n, o, p) = sram(32, 8);
  a + b + c + d + e + f + g + h + i + j + k + l + m + n + o + p
}
|}
  in
  let uses_a15 = ref false in
  FG.iter_blocks
    (fun blk ->
      Array.iter
        (fun insn ->
          List.iter
            (fun r ->
              if Bank.equal (Reg.bank r) Bank.A && Reg.num r = 15 then
                uses_a15 := true)
            (Insn.defs insn))
        blk.FG.insns)
    c.Regalloc.Driver.physical;
  (* A15 may appear only as a cycle-breaking temp of a parallel copy, in
     which case it is both defined and consumed within two adjacent
     moves; a plain computation result in A15 would break the reserve.
     For this straight-line program there are no parallel copies, so A15
     must not appear at all. *)
  checkb "A15 untouched" false !uses_a15

(* ---------------- emission details ---------------- *)

let test_no_self_moves () =
  let c =
    compile
      {|
fun main () : word {
  var acc = 0;
  var i = 0;
  while (i < 3) { acc := acc + i; i := i + 1; }
  acc
}
|}
  in
  FG.iter_blocks
    (fun blk ->
      Array.iter
        (fun insn ->
          match insn with
          | Insn.Move { dst; src } | Insn.Alu1 { op = `Mov; dst; src } ->
              checkb "self move survived" false (Reg.equal dst src)
          | _ -> ())
        blk.FG.insns)
    c.Regalloc.Driver.physical

let test_clones_emit_no_code () =
  let c =
    compile
      {|
fun main () : word {
  let (x, a, b, cc) = sram(0, 4);
  sram(100) <- (x, a);
  sram(108) <- (b, x);
  x + cc
}
|}
  in
  FG.iter_blocks
    (fun blk ->
      Array.iter
        (fun insn ->
          match insn with
          | Insn.Clone _ -> Alcotest.fail "clone in physical code"
          | _ -> ())
        blk.FG.insns)
    c.Regalloc.Driver.physical

(* ---------------- assembly printer ---------------- *)

let test_asm_syntax () =
  let r b n = Reg.make b n in
  checks "alu" "alu[a0, $l1, add, b2]"
    (Ixp.Asm.insn_syntax
       (Insn.Alu
          { dst = r Bank.A 0; op = Insn.Add; x = r Bank.L 1; y = Insn.Reg (r Bank.B 2) }));
  checks "imm" "immed[b3, 0xff]"
    (Ixp.Asm.insn_syntax (Insn.Imm { dst = r Bank.B 3; value = 255 }));
  checks "read"
    "sram[read, $l0, 100, 2] ; -> $l0, $l1"
    (Ixp.Asm.insn_syntax
       (Insn.Read
          {
            space = Insn.Sram;
            dsts = [| r Bank.L 0; r Bank.L 1 |];
            addr = { Insn.base = Insn.Lit 100; disp = 0 };
          }));
  checks "branch" "br_lt[a1, 5, loop#] ; else out#"
    (Ixp.Asm.term_syntax
       (Insn.Branch
          { cond = Insn.Lt; x = r Bank.A 1; y = Insn.Lit 5; ifso = "loop"; ifnot = "out" }))

let test_asm_whole_program () =
  let c = compile "fun main () : word { 6 * 7 }" in
  let asm = Ixp.Asm.program_to_string c.Regalloc.Driver.physical in
  checkb "has entry label" true
    (String.length asm > 0
    && String.sub asm 0 7 = "entry#:");
  checkb "halts" true
    (let lines = String.split_on_char '\n' asm in
     List.exists (fun l -> String.trim l = "halt") lines)

(* ---------------- simulator cycle model ---------------- *)

let test_memory_ops_cost_more () =
  let alu_prog =
    compile
      {|
fun main () : word {
  var x = 1;
  var i = 0;
  while (i < 8) { x := x + x; i := i + 1; }
  x
}
|}
  in
  let mem_prog =
    compile
      {|
fun main () : word {
  var x = 1;
  var i = 0;
  while (i < 8) {
    let v = sram(100, 1);
    x := x + v;
    i := i + 1;
  }
  x
}
|}
  in
  let run c =
    let sim = Ixp.Simulator.create c.Regalloc.Driver.physical in
    Ixp.Simulator.run_single sim
  in
  checkb "memory-bound program is slower" true (run mem_prog > run alu_prog)

let suites =
  [
    ( "emit",
      [
        Alcotest.test_case "swap cycles" `Quick test_swap_cycle_through_spare;
        Alcotest.test_case "A15 reserved" `Quick test_spare_a15_reserved;
        Alcotest.test_case "no self moves" `Quick test_no_self_moves;
        Alcotest.test_case "clones are free" `Quick test_clones_emit_no_code;
      ] );
    ( "asm",
      [
        Alcotest.test_case "instruction syntax" `Quick test_asm_syntax;
        Alcotest.test_case "whole program" `Quick test_asm_whole_program;
      ] );
    ( "simulator.costs",
      [ Alcotest.test_case "memory slower than alu" `Quick test_memory_ops_cost_more ] );
  ]
