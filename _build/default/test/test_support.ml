(* Tests for the support library: idents, bitsets, union-find, vec. *)

open Support

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_ident_freshness () =
  let a = Ident.fresh "x" and b = Ident.fresh "x" in
  checkb "distinct stamps" false (Ident.equal a b);
  checkb "same base" true (Ident.base a = Ident.base b);
  let c = Ident.clone a in
  checkb "clone distinct" false (Ident.equal a c)

let test_ident_collections () =
  let xs = List.init 100 (fun i -> Ident.fresh (Printf.sprintf "v%d" i)) in
  let set = Ident.Set.of_list xs in
  checki "set size" 100 (Ident.Set.cardinal set);
  let map =
    List.fold_left (fun m (i, x) -> Ident.Map.add x i m) Ident.Map.empty
      (List.mapi (fun i x -> (i, x)) xs)
  in
  checki "map lookup" 42 (Ident.Map.find (List.nth xs 42) map)

let test_bitset () =
  let b = Bitset.create 130 in
  Bitset.add b 0;
  Bitset.add b 64;
  Bitset.add b 129;
  checkb "mem 0" true (Bitset.mem b 0);
  checkb "mem 64" true (Bitset.mem b 64);
  checkb "mem 129" true (Bitset.mem b 129);
  checkb "not mem 1" false (Bitset.mem b 1);
  checki "cardinal" 3 (Bitset.cardinal b);
  Bitset.remove b 64;
  checkb "removed" false (Bitset.mem b 64);
  let c = Bitset.create 130 in
  Bitset.add c 5;
  checkb "union changes" true (Bitset.union_into ~dst:b ~src:c);
  checkb "union no change" false (Bitset.union_into ~dst:b ~src:c);
  checkb "after union" true (Bitset.mem b 5)

let test_union_find () =
  let uf = Union_find.create 10 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 1 2);
  ignore (Union_find.union uf 5 6);
  checkb "0~2" true (Union_find.equiv uf 0 2);
  checkb "5~6" true (Union_find.equiv uf 5 6);
  checkb "0!~5" false (Union_find.equiv uf 0 5);
  checki "classes" 7 (List.length (Union_find.classes uf))

let test_vec () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  checki "length" 100 (Vec.length v);
  checki "get" 57 (Vec.get v 57);
  checki "pop" 99 (Vec.pop v);
  checki "after pop" 99 (Vec.length v);
  Vec.set v 0 1000;
  checki "set" 1000 (Vec.get v 0);
  checki "fold" (1000 + (98 * 99 / 2) - 0) (Vec.fold_left ( + ) 0 v);
  let l = Vec.to_list v in
  checki "to_list length" 99 (List.length l)

let bitset_qcheck =
  QCheck.Test.make ~name:"bitset models a set of small ints" ~count:200
    QCheck.(small_list (int_range 0 63))
    (fun xs ->
      let b = Bitset.create 64 in
      List.iter (Bitset.add b) xs;
      let expected = List.sort_uniq compare xs in
      Bitset.elements b = expected)

let suites =
  [
    ( "support",
      [
        Alcotest.test_case "ident freshness" `Quick test_ident_freshness;
        Alcotest.test_case "ident collections" `Quick test_ident_collections;
        Alcotest.test_case "bitset" `Quick test_bitset;
        Alcotest.test_case "union find" `Quick test_union_find;
        Alcotest.test_case "vec" `Quick test_vec;
        QCheck_alcotest.to_alcotest bitset_qcheck;
      ] );
  ]
