test/test_misc.ml: Alcotest Ampl Cps Diag Float Fmt Ident Ixp List Lp Nova Srcloc String Support
