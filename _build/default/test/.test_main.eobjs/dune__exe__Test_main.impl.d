test/test_main.ml: Alcotest Test_ampl Test_cps Test_emit Test_ixp Test_lp Test_misc Test_nova Test_paper Test_random Test_regalloc Test_support Test_workloads
