test/test_paper.ml: Alcotest Array Cps Ixp List Nova Printf Regalloc Support
