test/test_ampl.ml: Alcotest Ampl Lp Support
