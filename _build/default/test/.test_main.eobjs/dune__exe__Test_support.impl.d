test/test_support.ml: Alcotest Bitset Ident List Printf QCheck QCheck_alcotest Support Union_find Vec
