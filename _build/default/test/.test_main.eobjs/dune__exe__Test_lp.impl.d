test/test_lp.ml: Alcotest Array Bigint Dense_simplex Dump Float Fmt List Lp Lp_format Mip Presolve Printf Problem QCheck QCheck_alcotest Rat Revised String
