test/test_nova.ml: Alcotest Array Ast Hashtbl Layout Lexer List Nova Parser QCheck QCheck_alcotest Stats Support Tast Typecheck
