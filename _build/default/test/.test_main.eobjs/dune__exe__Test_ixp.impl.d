test/test_ixp.ml: Alcotest Ident Ixp List Support
