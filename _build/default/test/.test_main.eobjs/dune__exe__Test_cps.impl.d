test/test_cps.ml: Alcotest Array Cps Ident Ixp List Nova Option Support
