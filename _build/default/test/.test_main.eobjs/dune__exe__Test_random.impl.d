test/test_random.ml: Array Buffer Cps Ixp List Printf QCheck QCheck_alcotest Regalloc String Support
