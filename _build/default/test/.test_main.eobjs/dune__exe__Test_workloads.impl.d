test/test_workloads.ml: Alcotest Array Cps Ixp Lazy Printf Regalloc Support Workloads
