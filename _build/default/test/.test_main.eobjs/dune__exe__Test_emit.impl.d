test/test_emit.ml: Alcotest Array Ixp List Regalloc String
