test/test_regalloc.ml: Alcotest Array Cps Ixp List Printf Regalloc
