(* Differential testing: generate random well-typed Nova programs,
   compile them through the full ILP pipeline, and require the cycle
   simulator and the CPS interpreter to agree bit-for-bit on the result
   and on memory effects. *)

module Insn = Ixp.Insn

(* --------------- a tiny generator of well-typed programs ----------- *)

type genstate = {
  mutable vars : string list; (* immutable word vars in scope *)
  mutable muts : string list; (* mutable word vars *)
  mutable fresh : int;
  mutable store_addr : int; (* next free store slot (bytes) *)
  buf : Buffer.t;
  mutable indent : int;
}

let fresh st prefix =
  st.fresh <- st.fresh + 1;
  Printf.sprintf "%s%d" prefix st.fresh

let line st fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string st.buf (String.make st.indent ' ');
      Buffer.add_string st.buf s;
      Buffer.add_char st.buf '\n')
    fmt

open QCheck.Gen

let pick_var st =
  match st.vars @ st.muts with
  | [] -> return "0"
  | vs -> oneofl vs

(* arithmetic expression over in-scope variables *)
let rec gen_expr st depth =
  if depth = 0 then
    oneof [ pick_var st; map string_of_int (int_range 0 1000) ]
  else
    let* op = oneofl [ "+"; "-"; "&"; "|"; "^" ] in
    let* a = gen_expr st (depth - 1) in
    let* b = gen_expr st (depth - 1) in
    let* shift = int_range 0 7 in
    oneofl
      [
        Printf.sprintf "(%s %s %s)" a op b;
        Printf.sprintf "((%s %s %s) >> %d)" a op b shift;
        Printf.sprintf "((%s) << %d)" a shift;
      ]

let gen_stmt st =
  let* kind = int_range 0 5 in
  match kind with
  | 0 ->
      (* read an aggregate from SRAM *)
      let* n = int_range 1 4 in
      let* slot = int_range 0 7 in
      let names = List.init n (fun _ -> fresh st "r") in
      st.vars <- names @ st.vars;
      if n = 1 then
        line st "let %s = sram(%d, 1);" (List.hd names) (slot * 32)
      else
        line st "let (%s) = sram(%d, %d);" (String.concat ", " names)
          (slot * 32) n;
      return ()
  | 1 ->
      (* new immutable binding *)
      let* e = gen_expr st 2 in
      let x = fresh st "x" in
      st.vars <- x :: st.vars;
      line st "let %s = %s;" x e;
      return ()
  | 2 ->
      (* new mutable *)
      let* e = gen_expr st 1 in
      let m = fresh st "m" in
      st.muts <- m :: st.muts;
      line st "var %s = %s;" m e;
      return ()
  | 3 when st.muts <> [] ->
      let* m = oneofl st.muts in
      let* e = gen_expr st 2 in
      line st "%s := %s;" m e;
      return ()
  | 4 ->
      (* store an aggregate *)
      let* n = int_range 1 4 in
      let* es =
        flatten_l (List.init n (fun _ -> gen_expr st 1))
      in
      let addr = 512 + st.store_addr in
      st.store_addr <- st.store_addr + (n * 4);
      line st "sram(%d) <- (%s);" addr (String.concat ", " es);
      return ()
  | _ ->
      (* bounded loop over a fresh counter *)
      let* trips = int_range 1 4 in
      let i = fresh st "i" in
      let acc = fresh st "a" in
      let* e = gen_expr st 1 in
      line st "var %s = 0;" i;
      line st "var %s = %s;" acc e;
      line st "while (%s < %d) {" i trips;
      st.indent <- st.indent + 2;
      let* body = gen_expr st 1 in
      line st "%s := %s + %s;" acc acc body;
      line st "%s := %s + 1;" i i;
      st.indent <- st.indent - 2;
      line st "}";
      st.muts <- acc :: st.muts;
      return ()

let gen_program =
  let* n_stmts = int_range 3 9 in
  let st =
    {
      vars = [];
      muts = [];
      fresh = 0;
      store_addr = 0;
      buf = Buffer.create 256;
      indent = 2;
    }
  in
  Buffer.add_string st.buf "fun main () : word {\n";
  let* () =
    let rec go k = if k = 0 then return () else gen_stmt st >>= fun () -> go (k - 1) in
    go n_stmts
  in
  let* result = gen_expr st 2 in
  line st "%s" result;
  Buffer.add_string st.buf "}\n";
  return (Buffer.contents st.buf)

(* --------------- the differential property ------------------------- *)

let sram_image = Array.init 64 (fun i -> (i * 0x01010101) land 0xFFFFFFFF)

let compiles_and_agrees src =
  match
    Support.Diag.protect (fun () ->
        Regalloc.Driver.compile ~file:"rand.nova" src)
  with
  | Error d -> QCheck.Test.fail_reportf "compile error: %s" (Support.Diag.to_string d)
  | Ok c ->
      let interp_result, ist =
        Regalloc.Driver.interpret
          ~init:(fun st ->
            Array.iteri
              (fun i v -> Ixp.Memory.poke (Cps.Interp.memory st) Insn.Sram i v)
              sram_image)
          c
      in
      let _, sim_results, sim =
        Regalloc.Driver.simulate
          ~init:(fun sim ->
            Array.iteri
              (fun i v ->
                Ixp.Memory.poke (Ixp.Simulator.shared_memory sim) Insn.Sram i v)
              sram_image)
          c
      in
      let result_ok =
        match interp_result with
        | [ v ] -> v = sim_results.(0)
        | _ -> false
      in
      (* compare the written SRAM region word by word *)
      let imem = Cps.Interp.memory ist in
      let smem = Ixp.Simulator.shared_memory sim in
      let mem_ok = ref true in
      for w = 128 to 192 do
        if
          Ixp.Memory.peek imem Insn.Sram w <> Ixp.Memory.peek smem Insn.Sram w
        then mem_ok := false
      done;
      if not result_ok then
        QCheck.Test.fail_reportf "result mismatch on:\n%s" src;
      if not !mem_ok then QCheck.Test.fail_reportf "memory mismatch on:\n%s" src;
      true

let random_program_test =
  QCheck.Test.make ~name:"random programs: simulator = interpreter" ~count:40
    (QCheck.make ~print:(fun s -> s) gen_program)
    compiles_and_agrees

let suites =
  [
    ( "random",
      [
        (let t = QCheck_alcotest.to_alcotest random_program_test in
         let name, _speed, fn = t in
         (name, `Slow, fn));
      ] );
  ]
