(* Workload tests: reference implementations sanity checks, front-end
   level equivalence for all three paper benchmarks, and (slow) full
   ILP-compiled equivalence for Kasumi. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------------- AES reference sanity ---------------- *)

let test_aes_sbox_known_values () =
  let s = Lazy.force Workloads.Aes_ref.sbox in
  (* canonical FIPS-197 values *)
  checki "S[0x00]" 0x63 s.(0x00);
  checki "S[0x01]" 0x7C s.(0x01);
  checki "S[0x53]" 0xED s.(0x53);
  checki "S[0xFF]" 0x16 s.(0xFF)

let test_aes_fips_vector () =
  (* FIPS-197 appendix B: key 2B7E151628AED2A6ABF7158809CF4F3C,
     plaintext 3243F6A8885A308D313198A2E0370734,
     ciphertext 3925841D02DC09FBDC118597196A0B32 *)
  let key = [| 0x2B7E1516; 0x28AED2A6; 0xABF71588; 0x09CF4F3C |] in
  let pt = [| 0x3243F6A8; 0x885A308D; 0x313198A2; 0xE0370734 |] in
  let rks = Workloads.Aes_ref.expand_key key in
  let ct = Workloads.Aes_ref.encrypt_block rks pt in
  checki "ct0" 0x3925841D ct.(0);
  checki "ct1" 0x02DC09FB ct.(1);
  checki "ct2" 0xDC118597 ct.(2);
  checki "ct3" 0x196A0B32 ct.(3)

let test_aes_key_expansion () =
  let key = [| 0x2B7E1516; 0x28AED2A6; 0xABF71588; 0x09CF4F3C |] in
  let w = Workloads.Aes_ref.expand_key key in
  checki "44 words" 44 (Array.length w);
  (* FIPS-197 appendix A: w[4] = A0FAFE17, w[43] = B6630CA6 *)
  checki "w4" 0xA0FAFE17 w.(4);
  checki "w43" 0xB6630CA6 w.(43)

let test_ones_complement () =
  checki "simple" 3
    (Workloads.Aes_ref.ones_complement_sum [| 0x00010002 |]);
  checki "folding" 1
    (Workloads.Aes_ref.ones_complement_sum [| 0xFFFF0001 |])

(* ---------------- Kasumi reference sanity ---------------- *)

let test_kasumi_structure () =
  let rks = Workloads.Kasumi_ref.schedule Workloads.Kasumi.demo_key in
  checki "8 rounds" 8 (Array.length rks);
  (* deterministic: same input -> same output; different keys differ *)
  let c1 = Workloads.Kasumi_ref.encrypt_block rks (0x01234567, 0x89ABCDEF) in
  let c2 = Workloads.Kasumi_ref.encrypt_block rks (0x01234567, 0x89ABCDEF) in
  checkb "deterministic" true (c1 = c2);
  let rks2 =
    Workloads.Kasumi_ref.schedule
      [| 0x1111; 0x2222; 0x3333; 0x4444; 0x5555; 0x6666; 0x7777; 0x8888 |]
  in
  let c3 = Workloads.Kasumi_ref.encrypt_block rks2 (0x01234567, 0x89ABCDEF) in
  checkb "key-dependent" true (c1 <> c3);
  (* diffusion: flipping one plaintext bit changes both output words *)
  let d1, d2 = Workloads.Kasumi_ref.encrypt_block rks (0x01234567, 0x89ABCDEE) in
  let e1, e2 = c1 in
  checkb "diffusion" true (d1 <> e1 && d2 <> e2)

let test_kasumi_packed_subkeys () =
  let rks = Workloads.Kasumi_ref.schedule Workloads.Kasumi.demo_key in
  let packed = Workloads.Kasumi_ref.packed_subkeys rks in
  checki "32 words" 32 (Array.length packed);
  checki "round0 word0" ((rks.(0).Workloads.Kasumi_ref.kl1 lsl 16)
                         lor rks.(0).Workloads.Kasumi_ref.kl2)
    packed.(0)

(* ---------------- front-end equivalence (fast) ---------------- *)

let run_front name source ~init =
  let front = Regalloc.Driver.front_end ~file:(name ^ ".nova") source in
  let st = Cps.Interp.create () in
  init st;
  let result =
    Cps.Interp.run st Support.Ident.Map.empty front.Regalloc.Driver.f_term
  in
  (result, st)

let test_aes_front_end_matches_reference () =
  let plen = 32 in
  let result, st =
    run_front "aes" Workloads.Aes.source ~init:(fun st ->
        let mem = Cps.Interp.memory st in
        Workloads.Aes.init_tables (fun w v -> Ixp.Memory.poke mem Ixp.Insn.Sram w v);
        ignore
          (Workloads.Aes.init_payload
             (fun w v -> Ixp.Memory.poke mem Ixp.Insn.Sdram w v)
             ~payload_len:plen))
  in
  let ct, csum = Workloads.Aes.expected ~payload_len:plen in
  let mem = Cps.Interp.memory st in
  Array.iteri
    (fun i w ->
      checki
        (Printf.sprintf "ct[%d]" i)
        w
        (Ixp.Memory.peek mem Ixp.Insn.Sdram ((Workloads.Aes.ct_base / 4) + i)))
    ct;
  checkb "csum" true (result = [ csum ])

let test_kasumi_front_end_matches_reference () =
  let plen = 32 in
  let result, st =
    run_front "kasumi" Workloads.Kasumi.source ~init:(fun st ->
        let mem = Cps.Interp.memory st in
        Workloads.Kasumi.init_tables
          ~load_sram:(fun w v -> Ixp.Memory.poke mem Ixp.Insn.Sram w v)
          ~load_scratch:(fun w v -> Ixp.Memory.poke mem Ixp.Insn.Scratch w v);
        ignore
          (Workloads.Kasumi.init_payload
             (fun w v -> Ixp.Memory.poke mem Ixp.Insn.Sdram w v)
             ~payload_len:plen))
  in
  let ct, csum = Workloads.Kasumi.expected ~payload_len:plen in
  let mem = Cps.Interp.memory st in
  Array.iteri
    (fun i w ->
      checki
        (Printf.sprintf "ct[%d]" i)
        w
        (Ixp.Memory.peek mem Ixp.Insn.Sdram ((Workloads.Kasumi.pkt_base / 4) + i)))
    ct;
  checkb "csum" true (result = [ csum ])

let test_nat_front_end_matches_reference () =
  let plen = 64 in
  let result, st =
    run_front "nat" Workloads.Nat.source ~init:(fun st ->
        let mem = Cps.Interp.memory st in
        Workloads.Nat.init_tables (fun w v -> Ixp.Memory.poke mem Ixp.Insn.Sram w v);
        ignore
          (Workloads.Nat.init_payload
             (fun w v -> Ixp.Memory.poke mem Ixp.Insn.Sdram w v)
             ~payload_len:plen))
  in
  let image, ret =
    Workloads.Nat.expected ~payload_len:plen
      ~sdram_words:Ixp.Memory.default_config.Ixp.Memory.sdram_words
  in
  let mem = Cps.Interp.memory st in
  for i = 0 to (Workloads.Nat.in_base + 40 + plen) / 4 do
    checki
      (Printf.sprintf "sdram[%d]" i)
      image.(i)
      (Ixp.Memory.peek mem Ixp.Insn.Sdram i)
  done;
  checkb "ret" true (result = [ ret ])

let test_nat_punts_bad_version () =
  (* corrupt the version field: the program must take the exception path *)
  let plen = 64 in
  let result, _ =
    run_front "nat" Workloads.Nat.source ~init:(fun st ->
        let mem = Cps.Interp.memory st in
        Workloads.Nat.init_tables (fun w v -> Ixp.Memory.poke mem Ixp.Insn.Sram w v);
        ignore
          (Workloads.Nat.init_payload
             (fun w v -> Ixp.Memory.poke mem Ixp.Insn.Sdram w v)
             ~payload_len:plen);
        (* version := 4 *)
        let w0 = Ixp.Memory.peek mem Ixp.Insn.Sdram (Workloads.Nat.in_base / 4) in
        Ixp.Memory.poke mem Ixp.Insn.Sdram (Workloads.Nat.in_base / 4)
          ((w0 land 0x0FFFFFFF) lor (4 lsl 28)))
  in
  checkb "punted" true (result = [ 0xF0000001 ])

(* ---------------- full ILP-compiled equivalence (slow) ---------------- *)

let test_kasumi_compiled_end_to_end () =
  let plen = 16 in
  let c =
    Regalloc.Driver.compile ~file:"kasumi.nova" Workloads.Kasumi.source
  in
  let sim = Ixp.Simulator.create c.Regalloc.Driver.physical in
  let mem = Ixp.Simulator.shared_memory sim in
  Workloads.Kasumi.init_tables
    ~load_sram:(fun w v -> Ixp.Memory.poke mem Ixp.Insn.Sram w v)
    ~load_scratch:(fun w v -> Ixp.Memory.poke mem Ixp.Insn.Scratch w v);
  let sdram = Ixp.Simulator.sdram_of_thread sim ~thread:0 in
  ignore
    (Workloads.Kasumi.init_payload
       (fun w v -> Ixp.Memory.poke sdram Ixp.Insn.Sdram w v)
       ~payload_len:plen);
  let cycles = Ixp.Simulator.run_single sim in
  checkb "ran" true (cycles > 0);
  let ct, _ = Workloads.Kasumi.expected ~payload_len:plen in
  Array.iteri
    (fun i w ->
      checki
        (Printf.sprintf "compiled ct[%d]" i)
        w
        (Ixp.Memory.peek sdram Ixp.Insn.Sdram ((Workloads.Kasumi.pkt_base / 4) + i)))
    ct

let suites =
  [
    ( "workloads.aes_ref",
      [
        Alcotest.test_case "sbox known values" `Quick test_aes_sbox_known_values;
        Alcotest.test_case "FIPS-197 vector" `Quick test_aes_fips_vector;
        Alcotest.test_case "key expansion" `Quick test_aes_key_expansion;
        Alcotest.test_case "ones complement" `Quick test_ones_complement;
      ] );
    ( "workloads.kasumi_ref",
      [
        Alcotest.test_case "structure" `Quick test_kasumi_structure;
        Alcotest.test_case "packed subkeys" `Quick test_kasumi_packed_subkeys;
      ] );
    ( "workloads.front_end",
      [
        Alcotest.test_case "AES matches reference" `Quick
          test_aes_front_end_matches_reference;
        Alcotest.test_case "Kasumi matches reference" `Quick
          test_kasumi_front_end_matches_reference;
        Alcotest.test_case "NAT matches reference" `Quick
          test_nat_front_end_matches_reference;
        Alcotest.test_case "NAT punts bad version" `Quick
          test_nat_punts_bad_version;
      ] );
    ( "workloads.compiled",
      [
        Alcotest.test_case "Kasumi ILP-compiled end-to-end" `Slow
          test_kasumi_compiled_end_to_end;
      ] );
  ]
