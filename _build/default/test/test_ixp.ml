(* Tests for the IXP machine model: banks/datapaths, memory and
   alignment, flowgraph/liveness/frequency, checker, simulator. *)

open Support
module Bank = Ixp.Bank
module Insn = Ixp.Insn
module FG = Ixp.Flowgraph
module Reg = Ixp.Reg

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------------- banks and datapaths ---------------- *)

let test_bank_datapaths () =
  checkb "A feeds ALU" true (Bank.can_feed_alu Bank.A);
  checkb "S cannot feed ALU" false (Bank.can_feed_alu Bank.S);
  checkb "ALU writes S" true (Bank.can_receive_alu Bank.S);
  checkb "ALU cannot write L" false (Bank.can_receive_alu Bank.L);
  (* no path between registers of the same transfer bank *)
  checkb "L->L illegal" false (Bank.direct_move_ok ~src:Bank.L ~dst:Bank.L);
  checkb "A->S ok" true (Bank.direct_move_ok ~src:Bank.A ~dst:Bank.S);
  checkb "S->A illegal" false (Bank.direct_move_ok ~src:Bank.S ~dst:Bank.A);
  (* values in S escape only through memory *)
  checkb "S->M legal move" true (Bank.move_legal ~src:Bank.S ~dst:Bank.M);
  checkb "S->B illegal move" false (Bank.move_legal ~src:Bank.S ~dst:Bank.B);
  checkb "M->L legal" true (Bank.move_legal ~src:Bank.M ~dst:Bank.L);
  checkb "M->SD illegal" false (Bank.move_legal ~src:Bank.M ~dst:Bank.SD)

let test_move_costs () =
  let c ~src ~dst = Bank.move_cost ~src ~dst () in
  checkb "identity free" true (c ~src:Bank.A ~dst:Bank.A = 0.);
  checkb "reg-reg cheap" true (c ~src:Bank.A ~dst:Bank.S = 1.0);
  checkb "spill expensive" true (c ~src:Bank.A ~dst:Bank.M > 100.);
  checkb "reload expensive" true (c ~src:Bank.M ~dst:Bank.A > 100.);
  checkb "bias against B" true
    (c ~src:Bank.A ~dst:Bank.B > c ~src:Bank.B ~dst:Bank.A *. 0.9)

(* ---------------- memory ---------------- *)

let test_memory_alignment () =
  let m = Ixp.Memory.create () in
  Ixp.Memory.write m Insn.Sram 100 [| 1; 2; 3 |];
  checkb "sram read back" true (Ixp.Memory.read m Insn.Sram 100 ~count:3 = [| 1; 2; 3 |]);
  checkb "sram misaligned" true
    (try
       ignore (Ixp.Memory.read m Insn.Sram 101 ~count:1);
       false
     with Ixp.Memory.Fault _ -> true);
  checkb "sdram 4-byte rejected" true
    (try
       ignore (Ixp.Memory.read m Insn.Sdram 100 ~count:2);
       false
     with Ixp.Memory.Fault _ -> true);
  checkb "sdram odd count rejected" true
    (try
       ignore (Ixp.Memory.read m Insn.Sdram 96 ~count:3);
       false
     with Ixp.Memory.Fault _ -> true);
  checkb "sdram ok" true
    (try
       ignore (Ixp.Memory.read m Insn.Sdram 96 ~count:4);
       true
     with Ixp.Memory.Fault _ -> false)

let test_memory_bit_test_set () =
  let m = Ixp.Memory.create () in
  Ixp.Memory.write m Insn.Sram 200 [| 0b1010 |];
  let old = Ixp.Memory.bit_test_set m 200 0b0110 in
  checki "old value" 0b1010 old;
  checki "new value" 0b1110 (Ixp.Memory.peek m Insn.Sram 50)

let test_memory_hash_deterministic () =
  checki "hash stable" (Ixp.Memory.hash 0xDEADBEEF) (Ixp.Memory.hash 0xDEADBEEF);
  checkb "hash mixes" true (Ixp.Memory.hash 1 <> Ixp.Memory.hash 2)

(* ---------------- flowgraph + liveness ---------------- *)

let mk_var = Ident.fresh

let diamond_graph () =
  (* entry: x = imm, branch -> a | b; a: y = x+1; b: y2 = x+2; join uses *)
  let g = FG.create () in
  let x = mk_var "x" and y = mk_var "y" and z = mk_var "z" in
  ignore
    (FG.add_block g ~label:"entry"
       ~insns:[ Insn.Imm { dst = x; value = 1 } ]
       ~term:
         (Insn.Branch
            { cond = Insn.Eq; x; y = Insn.Lit 0; ifso = "a"; ifnot = "b" }));
  ignore
    (FG.add_block g ~label:"a"
       ~insns:[ Insn.Alu { dst = y; op = Insn.Add; x; y = Insn.Lit 1 } ]
       ~term:(Insn.Jump "join"));
  ignore
    (FG.add_block g ~label:"b"
       ~insns:[ Insn.Alu { dst = y; op = Insn.Add; x; y = Insn.Lit 2 } ]
       ~term:(Insn.Jump "join"));
  ignore
    (FG.add_block g ~label:"join"
       ~insns:[ Insn.Alu1 { dst = z; op = `Mov; src = y } ]
       ~term:Insn.Halt);
  (g, x, y, z)

let test_liveness_diamond () =
  let g, x, y, _z = diamond_graph () in
  let live = Ixp.Liveness.compute g in
  (* x live into both arms; y live into join *)
  checkb "x live at a entry" true
    (Ident.Set.mem x (Ixp.Liveness.live_at live { FG.block = "a"; pos = 0 }));
  checkb "y live at join entry" true
    (Ident.Set.mem y (Ixp.Liveness.live_at live { FG.block = "join"; pos = 0 }));
  checkb "x dead at join" false
    (Ident.Set.mem x (Ixp.Liveness.live_at live { FG.block = "join"; pos = 0 }));
  (* interference: x interferes with nothing after its last use...
     x and y never simultaneously live (y defined at x's last use) *)
  let inter = Ixp.Liveness.interferences live in
  checkb "x/y no interference" false
    (List.exists
       (fun (a, b) ->
         (Ident.equal a x && Ident.equal b y)
         || (Ident.equal a y && Ident.equal b x))
       inter)

let test_copies_cross_edges () =
  let g, x, _y, _z = diamond_graph () in
  let live = Ixp.Liveness.compute g in
  let copies = Ixp.Liveness.copies live in
  (* x is carried from entry exit into both arm entries *)
  let carried_to label =
    List.exists
      (fun (p1, p2, v) ->
        Ident.equal v x
        && p1.FG.block = "entry"
        && p2.FG.block = label && p2.FG.pos = 0)
      copies
  in
  checkb "x carried to a" true (carried_to "a");
  checkb "x carried to b" true (carried_to "b")

let test_frequency_loop () =
  (* entry -> loop; loop -> loop | exit: loop block should be hotter *)
  let g = FG.create () in
  let i = mk_var "i" in
  ignore
    (FG.add_block g ~label:"entry"
       ~insns:[ Insn.Imm { dst = i; value = 0 } ]
       ~term:(Insn.Jump "loop"));
  ignore
    (FG.add_block g ~label:"loop"
       ~insns:[ Insn.Alu { dst = i; op = Insn.Add; x = i; y = Insn.Lit 1 } ]
       ~term:
         (Insn.Branch
            { cond = Insn.Lt; x = i; y = Insn.Lit 10; ifso = "loop"; ifnot = "exit" }));
  ignore (FG.add_block g ~label:"exit" ~insns:[] ~term:Insn.Halt);
  let freq = Ixp.Frequency.compute g in
  checkb "loop hotter than entry" true
    (Ixp.Frequency.block_frequency freq "loop"
    > Ixp.Frequency.block_frequency freq "entry");
  checkb "exit cooler than loop" true
    (Ixp.Frequency.block_frequency freq "exit"
    < Ixp.Frequency.block_frequency freq "loop")

let test_dempster_shafer () =
  let ds = Ixp.Frequency.dempster_shafer in
  Alcotest.(check (float 1e-9)) "neutral element" 0.7 (ds 0.5 0.7);
  checkb "reinforcement" true (ds 0.7 0.7 > 0.7);
  checkb "conflict dampens" true (ds 0.7 0.3 = ds 0.3 0.7)

(* ---------------- checker ---------------- *)

let reg b n = Reg.make b n

let physical_block insns term =
  let g = FG.create () in
  ignore (FG.add_block g ~label:"entry" ~insns ~term);
  g

let test_checker_accepts_legal () =
  let g =
    physical_block
      [
        Insn.Read
          {
            space = Insn.Sram;
            dsts = [| reg Bank.L 0; reg Bank.L 1 |];
            addr = { Insn.base = Insn.Lit 100; disp = 0 };
          };
        Insn.Alu
          { dst = reg Bank.A 0; op = Insn.Add; x = reg Bank.L 0; y = Insn.Reg (reg Bank.B 1) };
        Insn.Move { dst = reg Bank.S 3; src = reg Bank.A 0 };
        Insn.Write
          {
            space = Insn.Sram;
            srcs = [| reg Bank.S 3 |];
            addr = { Insn.base = Insn.Lit 200; disp = 0 };
          };
      ]
      Insn.Halt
  in
  checki "no violations" 0 (List.length (Ixp.Checker.check g))

let test_checker_rejects_illegal () =
  let violations insns =
    List.length (Ixp.Checker.check (physical_block insns Insn.Halt))
  in
  (* two operands from the same bank *)
  checkb "same-bank operands" true
    (violations
       [
         Insn.Alu
           { dst = reg Bank.A 0; op = Insn.Add; x = reg Bank.A 1; y = Insn.Reg (reg Bank.A 2) };
       ]
    > 0);
  (* one from L and one from LD: same group *)
  checkb "L+LD operands" true
    (violations
       [
         Insn.Alu
           { dst = reg Bank.B 0; op = Insn.Add; x = reg Bank.L 1; y = Insn.Reg (reg Bank.LD 2) };
       ]
    > 0);
  (* aggregate not adjacent *)
  checkb "non-adjacent aggregate" true
    (violations
       [
         Insn.Read
           {
             space = Insn.Sram;
             dsts = [| reg Bank.L 0; reg Bank.L 2 |];
             addr = { Insn.base = Insn.Lit 0; disp = 0 };
           };
       ]
    > 0);
  (* read into the wrong bank *)
  checkb "read into S" true
    (violations
       [
         Insn.Read
           {
             space = Insn.Sram;
             dsts = [| reg Bank.S 0 |];
             addr = { Insn.base = Insn.Lit 0; disp = 0 };
           };
       ]
    > 0);
  (* move S -> A has no datapath *)
  checkb "S->A move" true
    (violations [ Insn.Move { dst = reg Bank.A 0; src = reg Bank.S 0 } ] > 0);
  (* hash with mismatched numbers *)
  checkb "hash reg numbers" true
    (violations [ Insn.Hash { dst = reg Bank.L 1; src = reg Bank.S 2 } ] > 0);
  (* clone must not survive *)
  checkb "clone survives" true
    (violations [ Insn.Clone { dsts = [| reg Bank.A 0 |]; src = reg Bank.A 1 } ] > 0)

(* ---------------- simulator ---------------- *)

let test_simulator_basics () =
  let a0 = reg Bank.A 0 and b0 = reg Bank.B 0 and s0 = reg Bank.S 0 in
  let g =
    physical_block
      [
        Insn.Imm { dst = a0; value = 40 };
        Insn.Imm { dst = b0; value = 2 };
        Insn.Alu { dst = a0; op = Insn.Add; x = a0; y = Insn.Reg b0 };
        Insn.Move { dst = s0; src = a0 };
        Insn.Write
          { space = Insn.Scratch; srcs = [| s0 |]; addr = { Insn.base = Insn.Lit 64; disp = 0 } };
      ]
      Insn.Halt
  in
  let sim = Ixp.Simulator.create g in
  let cycles = Ixp.Simulator.run_single sim in
  checkb "some cycles" true (cycles > 0);
  checki "result" 42
    (Ixp.Memory.peek (Ixp.Simulator.shared_memory sim) Insn.Scratch 16)

let test_simulator_branch_loop () =
  (* sum 1..5 via a loop *)
  let a0 = reg Bank.A 0 (* acc *) and a1 = reg Bank.A 1 (* i *) in
  let s0 = reg Bank.S 0 in
  let g = FG.create () in
  ignore
    (FG.add_block g ~label:"entry"
       ~insns:[ Insn.Imm { dst = a0; value = 0 }; Insn.Imm { dst = a1; value = 1 } ]
       ~term:(Insn.Jump "loop"));
  ignore
    (FG.add_block g ~label:"loop"
       ~insns:
         [
           Insn.Alu { dst = a0; op = Insn.Add; x = a0; y = Insn.Reg a1 };
           Insn.Alu { dst = a1; op = Insn.Add; x = a1; y = Insn.Lit 1 };
         ]
       ~term:
         (Insn.Branch
            { cond = Insn.Le; x = a1; y = Insn.Lit 5; ifso = "loop"; ifnot = "out" }));
  ignore
    (FG.add_block g ~label:"out"
       ~insns:
         [
           Insn.Move { dst = s0; src = a0 };
           Insn.Write
             { space = Insn.Scratch; srcs = [| s0 |]; addr = { Insn.base = Insn.Lit 0; disp = 0 } };
         ]
       ~term:Insn.Halt);
  let sim = Ixp.Simulator.create g in
  ignore (Ixp.Simulator.run_single sim);
  checki "sum 1..5" 15 (Ixp.Memory.peek (Ixp.Simulator.shared_memory sim) Insn.Scratch 0)

let test_simulator_multithread_throughput () =
  (* memory-bound single-packet program: multithreading should raise
     packets/cycle by hiding SDRAM latency *)
  let ld = [| reg Bank.LD 0; reg Bank.LD 1 |] in
  let g =
    physical_block
      [
        Insn.Read
          { space = Insn.Sdram; dsts = ld; addr = { Insn.base = Insn.Lit 0; disp = 0 } };
        Insn.Read
          { space = Insn.Sdram; dsts = ld; addr = { Insn.base = Insn.Lit 8; disp = 0 } };
        Insn.Read
          { space = Insn.Sdram; dsts = ld; addr = { Insn.base = Insn.Lit 16; disp = 0 } };
      ]
      Insn.Halt
  in
  let run threads =
    let sim = Ixp.Simulator.create ~threads g in
    let budget = 40 in
    let source ~thread:_ ~packets_done =
      if packets_done < budget / threads then Some [| 1; 2 |] else None
    in
    let cycles = Ixp.Simulator.run_packets sim source in
    float_of_int (Ixp.Simulator.packets_done sim) /. float_of_int cycles
  in
  let t1 = run 1 and t4 = run 4 in
  checkb "4 threads hide latency" true (t4 > t1 *. 1.5)

let suites =
  [
    ( "ixp.machine",
      [
        Alcotest.test_case "bank datapaths" `Quick test_bank_datapaths;
        Alcotest.test_case "move costs" `Quick test_move_costs;
        Alcotest.test_case "memory alignment" `Quick test_memory_alignment;
        Alcotest.test_case "bit_test_set" `Quick test_memory_bit_test_set;
        Alcotest.test_case "hash deterministic" `Quick test_memory_hash_deterministic;
      ] );
    ( "ixp.analysis",
      [
        Alcotest.test_case "liveness diamond" `Quick test_liveness_diamond;
        Alcotest.test_case "copies cross edges" `Quick test_copies_cross_edges;
        Alcotest.test_case "frequency loop" `Quick test_frequency_loop;
        Alcotest.test_case "dempster-shafer" `Quick test_dempster_shafer;
      ] );
    ( "ixp.checker",
      [
        Alcotest.test_case "accepts legal" `Quick test_checker_accepts_legal;
        Alcotest.test_case "rejects illegal" `Quick test_checker_rejects_illegal;
      ] );
    ( "ixp.simulator",
      [
        Alcotest.test_case "basics" `Quick test_simulator_basics;
        Alcotest.test_case "branch loop" `Quick test_simulator_branch_loop;
        Alcotest.test_case "multithread throughput" `Quick
          test_simulator_multithread_throughput;
      ] );
  ]
