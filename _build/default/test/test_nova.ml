(* Tests for the Nova front end: lexer, parser, layouts, type checker,
   static statistics. *)

open Nova

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let parse src = Parser.parse_string ~file:"test.nova" src
let typecheck ?entry src = Typecheck.check_program ?entry (parse src)

let expect_error f =
  match Support.Diag.protect f with
  | Ok _ -> None
  | Error d -> Some (Support.Diag.to_string d)

(* ---------------- lexer ---------------- *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize ~file:"t" "let x = 0x1F + 42; // comment\n y != z" in
  let kinds = Array.to_list (Array.map (fun l -> l.Lexer.tok) toks) in
  checkb "shape" true
    (kinds
    = [
        Lexer.KW_let; Lexer.IDENT "x"; Lexer.EQUALS; Lexer.INT 31; Lexer.PLUS;
        Lexer.INT 42; Lexer.SEMI; Lexer.IDENT "y"; Lexer.NEQ; Lexer.IDENT "z";
        Lexer.EOF;
      ])

let test_lexer_operators () =
  let toks = Lexer.tokenize ~file:"t" "<< >> >>> <- ## := == <= >= && || <u >=u" in
  let kinds = Array.to_list (Array.map (fun l -> l.Lexer.tok) toks) in
  checkb "operators" true
    (kinds
    = [
        Lexer.SHL; Lexer.SHR; Lexer.ASR_OP; Lexer.LARROW; Lexer.HASHHASH;
        Lexer.ASSIGN; Lexer.EQEQ; Lexer.LE; Lexer.GE; Lexer.ANDAND; Lexer.OROR;
        Lexer.ULT; Lexer.UGE; Lexer.EOF;
      ])

let test_lexer_comments_and_position () =
  let toks = Lexer.tokenize ~file:"t" "/* multi\nline */ x" in
  checkb "comment skipped" true
    (match toks.(0).Lexer.tok with Lexer.IDENT "x" -> true | _ -> false);
  checki "line tracking" 2 (Support.Srcloc.start_line toks.(0).Lexer.loc)

(* ---------------- parser ---------------- *)

let test_parse_paper_example () =
  (* the paper's §3.2 layout and unpack example, lightly adapted *)
  let prog =
    parse
      {|
layout ipv6_address = { a1 : 32, a2 : 32, a3 : 32, a4 : 32 };
layout ipv6_header = {
  verpri : overlay { whole : 8 | parts : { version : 4, priority : 4 } },
  flow_label : 24,
  payload_length : 16, next_header : 8, hop_limit : 8,
  src_address : ipv6_address, dst_address : ipv6_address };

fun main (a) : word {
  let pdata : packed(ipv6_header) = sdram(a, 10);
  let udata = unpack[ipv6_header](pdata);
  if (udata.verpri.parts.version == 6 && udata.hop_limit > 0) { 1 } else { 0 }
}
|}
  in
  checki "decls" 3 (List.length prog.Ast.decls)

let test_parse_layout_concat () =
  let prog =
    parse
      {|
layout lyt = { x : 16, y : 32, z : 8 };
fun main (p0, p1, p2) : word {
  let udata = unpack[lyt ## {40}]((p0, p1, p2));
  udata.x
}
|}
  in
  checki "decls" 2 (List.length prog.Ast.decls)

let test_parse_try_handle () =
  let prog =
    parse
      {|
fun main () : word {
  try {
    if (1 == 2) { raise X1 [b = 3, c = 4]; }
    raise X2;
    7
  }
  handle X1 [b, c] { b + c }
  handle X2 () { 0 }
}
|}
  in
  checki "decls" 1 (List.length prog.Ast.decls)

let test_parse_errors () =
  checkb "unbalanced" true (expect_error (fun () -> parse "fun f ( {") <> None);
  checkb "missing semi" true
    (expect_error (fun () -> parse "fun f () { let x = 1 let y = 2; x }") <> None);
  checkb "bad toplevel" true (expect_error (fun () -> parse "while (1) {}") <> None)

(* ---------------- layouts ---------------- *)

let resolve_layout src name =
  let tprog = typecheck ~entry:"main" src in
  match Hashtbl.find_opt tprog.Tast.layouts name with
  | Some l -> l
  | None -> Alcotest.fail ("layout not found: " ^ name)

let layout_fixture =
  {|
layout addr = { a1 : 32, a2 : 32 };
layout hdr = {
  ver : 4, pri : 4, flow : 24,
  len : 16, nh : 8, hl : 8,
  src : addr
};
fun main () { () }
|}

let test_layout_sizes () =
  let l = resolve_layout layout_fixture "hdr" in
  checki "bit size" (32 + 32 + 64) (Layout.bit_size l);
  checki "word size" 4 (Layout.word_size l)

let test_layout_leaves () =
  let l = resolve_layout layout_fixture "hdr" in
  let leaves = Layout.leaves l in
  checki "leaf count" 8 (List.length leaves);
  let find path =
    List.find (fun (lf : Layout.leaf) -> lf.Layout.path = path) leaves
  in
  let ver = find [ "ver" ] in
  checki "ver offset" 0 ver.Layout.offset;
  checki "ver width" 4 ver.Layout.width;
  let a2 = find [ "src"; "a2" ] in
  checki "a2 offset" 96 a2.Layout.offset

let test_layout_overlay () =
  let src =
    {|
layout h = { vp : overlay { whole : 8 | parts : { v : 4, p : 4 } }, rest : 24 };
fun main () { () }
|}
  in
  let l = resolve_layout src "h" in
  checki "size ignores alternatives" 32 (Layout.bit_size l);
  let leaves = Layout.leaves l in
  (* whole, v, p, rest: all alternatives spread *)
  checki "all alternatives" 4 (List.length leaves);
  let overlays = Layout.overlays l in
  checki "one overlay" 1 (List.length overlays)

let test_layout_overlay_size_mismatch () =
  checkb "mismatched alternatives rejected" true
    (expect_error (fun () ->
         typecheck
           {|
layout bad = { o : overlay { a : 8 | b : 16 } };
fun main () { () }
|})
    <> None)

let test_extract_insert_roundtrip () =
  (* straddling field: 24 bits starting at offset 20 *)
  let words = [| 0xAABBCCDD; 0x11223344 |] in
  let get_word i = words.(i) in
  let v = Layout.extract_value ~offset:20 ~width:24 ~get_word in
  (* bits 20..43: low 12 of word0 = CDD, high 12 of word1 = 112 *)
  checki "extract straddling" 0xCDD112 v;
  let out = Array.copy words in
  Layout.insert_value ~offset:20 ~width:24 ~get_word:(fun i -> out.(i))
    ~set_word:(fun i v -> out.(i) <- v)
    0xABCDEF;
  let v' = Layout.extract_value ~offset:20 ~width:24 ~get_word:(fun i -> out.(i)) in
  checki "insert roundtrip" 0xABCDEF v';
  (* other bits untouched *)
  checki "prefix preserved" (0xAABBCCDD lsr 12) (out.(0) lsr 12)

let extract_qcheck =
  QCheck.Test.make ~name:"layout extract/insert roundtrip" ~count:300
    QCheck.(
      triple (int_range 0 95) (int_range 1 32) (int_range 0 0xFFFF))
    (fun (offset, width, v) ->
      QCheck.assume (offset + width <= 128);
      let v = v land Layout.mask_of_width width in
      let words = Array.make 4 0x5A5A5A5A in
      Layout.insert_value ~offset ~width
        ~get_word:(fun i -> words.(i))
        ~set_word:(fun i x -> words.(i) <- x)
        v;
      Layout.extract_value ~offset ~width ~get_word:(fun i -> words.(i)) = v)

(* ---------------- type checker ---------------- *)

let test_typecheck_rejects () =
  let cases =
    [
      ("unbound variable", "fun main () : word { x }");
      ("bad arity", "fun f (a, b) : word { a + b } fun main () : word { f(1) }");
      ("branch mismatch", "fun main () : word { if (1 == 1) { 2 } else { () } }");
      ( "condition not bool",
        "fun main () : word { if (1 + 1) { 2 } else { 3 } }" );
      ("assign to let", "fun main () : word { let x = 1; x := 2; x }");
      ( "non-tail recursion",
        "fun f (n : word) : word { 1 + f(n) } fun main () : word { f(0) }" );
      ( "mutual non-tail recursion",
        {|fun f (n : word) : word { g(n) + 1 }
          fun g (n : word) : word { f(n) + 2 }
          fun main () : word { f(0) }|} );
      ("duplicate function", "fun f () {} fun f () {} fun main () {}");
      ( "raise unknown exception",
        "fun main () : word { try { raise Y; 1 } handle X () { 0 } }" );
      ( "sdram odd count",
        "fun main () : word { let (a, b, c) = sdram(0); a }" );
      ("no entry", "fun helper () {}");
      ( "word/bool confusion",
        "fun main () : bool { let x = 1; x }" );
    ]
  in
  List.iter
    (fun (name, src) ->
      checkb name true (expect_error (fun () -> typecheck src) <> None))
    cases

let test_typecheck_accepts () =
  let cases =
    [
      ("tail recursion", "fun f (n : word) : word { if (n == 0) { 1 } else { f(n - 1) } } fun main () : word { f(5) }");
      ("exceptions as arguments",
       {|fun g (e : exn([b : word]), x : word) : word {
           if (x == 0) { raise e [b = 1]; }
           x
         }
         fun main () : word {
           try { g(E, 0) } handle E [b] { b + 41 }
         }|});
      ("records and tuples",
       {|fun main () : word {
           let r = [x = 1, y = (2, 3)];
           r.x + r.y.1
         }|});
      ("named call", "fun f [a, b] : word { a - b } fun main () : word { f[b = 1, a = 3] }");
      ("bool vars", "fun main () : word { var going = true; while (going) { going := false; } 4 }");
    ]
  in
  List.iter
    (fun (name, src) ->
      match expect_error (fun () -> typecheck src) with
      | None -> ()
      | Some e -> Alcotest.fail (name ^ ": " ^ e))
    cases

let test_typecheck_paper_trimming_example () =
  (* paper §4.4: unused fields must type-check (their elimination is the
     optimizer's job) *)
  let src =
    {|
layout p = { a : 16, b : 32, c : 16 };
fun f (p1 : packed(p), p2 : packed(p)) : word {
  let u1 = unpack[p](p1);
  let u2 = unpack[p](p2);
  (if (u1.c > 10) { u1 } else { u2 }).b
}
fun main () : word { f((1, 2), (3, 4)) }
|}
  in
  checkb "accepts" true (expect_error (fun () -> typecheck src) = None)

let test_const_declarations () =
  let src =
    {|
const BASE = 0x100;
const SIZE = BASE + 64;
const MASK = (1 << 12) - 1;
fun main () : word { SIZE & MASK }
|}
  in
  checkb "consts fold" true (expect_error (fun () -> typecheck src) = None);
  (* and the folded value flows through compilation *)
  let tprog = typecheck src in
  ignore tprog

let test_tuple_projection () =
  let src =
    {|
fun pair () : (word, word) { (10, 32) }
fun main () : word {
  let p = pair();
  p.0 + p.1
}
|}
  in
  checkb "projection accepted" true (expect_error (fun () -> typecheck src) = None)

let test_operator_precedence_gotcha () =
  (* like C, == binds tighter than &: this must be a type error *)
  checkb "& vs == precedence" true
    (expect_error (fun () ->
         typecheck "fun main () : word { if (1 & 2 == 2) { 1 } else { 0 } }")
    <> None)

let test_unsigned_comparisons () =
  let src =
    "fun main () : word { if (0xFFFFFFFF >=u 1 && !(0xFFFFFFFF < 1 == false)) { 1 } else { 0 } }"
  in
  (* (0xFFFFFFFF < 1) is a signed comparison: -1 < 1 is true *)
  ignore src;
  checkb "unsigned ge" true
    (expect_error (fun () ->
         typecheck "fun main () : word { if (0xFFFFFFFF >=u 1) { 1 } else { 0 } }")
    = None)

(* ---------------- stats (Figure 5) ---------------- *)

let test_stats () =
  let src =
    {|
layout a = { x : 8 };
layout b = { y : 8 };
const N = 2;
fun main () : word {
  let u = unpack[a]((42));
  let v = unpack[b]((43));
  let p = pack[a] [x = 1];
  try {
    if (u.x == 0) { raise E1; }
    if (v.y == 0) { raise E2 [k = 1]; }
    p.0
  }
  handle E1 () { 1 }
  handle E2 [k] { k }
}
|}
  in
  let stats = Stats.of_program ~source:src (parse src) in
  checki "layouts" 2 stats.Stats.layout_specs;
  checki "packs" 1 stats.Stats.packs;
  checki "unpacks" 2 stats.Stats.unpacks;
  checki "raises" 2 stats.Stats.raises;
  checki "handles" 2 stats.Stats.handles;
  checki "consts" 1 stats.Stats.consts;
  checkb "lines counted" true (stats.Stats.lines > 15)

let suites =
  [
    ( "nova.lexer",
      [
        Alcotest.test_case "tokens" `Quick test_lexer_tokens;
        Alcotest.test_case "operators" `Quick test_lexer_operators;
        Alcotest.test_case "comments/positions" `Quick
          test_lexer_comments_and_position;
      ] );
    ( "nova.parser",
      [
        Alcotest.test_case "paper example" `Quick test_parse_paper_example;
        Alcotest.test_case "layout concat" `Quick test_parse_layout_concat;
        Alcotest.test_case "try/handle" `Quick test_parse_try_handle;
        Alcotest.test_case "errors" `Quick test_parse_errors;
      ] );
    ( "nova.layout",
      [
        Alcotest.test_case "sizes" `Quick test_layout_sizes;
        Alcotest.test_case "leaves" `Quick test_layout_leaves;
        Alcotest.test_case "overlay" `Quick test_layout_overlay;
        Alcotest.test_case "overlay mismatch" `Quick
          test_layout_overlay_size_mismatch;
        Alcotest.test_case "extract/insert" `Quick test_extract_insert_roundtrip;
        QCheck_alcotest.to_alcotest extract_qcheck;
      ] );
    ( "nova.typecheck",
      [
        Alcotest.test_case "rejects" `Quick test_typecheck_rejects;
        Alcotest.test_case "accepts" `Quick test_typecheck_accepts;
        Alcotest.test_case "paper trimming example" `Quick
          test_typecheck_paper_trimming_example;
        Alcotest.test_case "const declarations" `Quick test_const_declarations;
        Alcotest.test_case "tuple projection" `Quick test_tuple_projection;
        Alcotest.test_case "precedence gotcha" `Quick
          test_operator_precedence_gotcha;
        Alcotest.test_case "unsigned comparisons" `Quick
          test_unsigned_comparisons;
      ] );
    ( "nova.stats",
      [ Alcotest.test_case "figure 5 counters" `Quick test_stats ] );
  ]
