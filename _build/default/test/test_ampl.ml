(* Tests for the AMPL-style modeling layer. *)

module D = Ampl.Dataset
module M = Ampl.Model

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_dataset_basics () =
  let s = D.of_list 2 [ [ D.S "a"; D.I 1 ]; [ D.S "b"; D.I 2 ]; [ D.S "a"; D.I 1 ] ] in
  checki "dedup" 2 (D.size s);
  checkb "mem" true (D.mem s [ D.S "a"; D.I 1 ]);
  checkb "not mem" false (D.mem s [ D.S "a"; D.I 2 ]);
  let p = D.product (D.of_strings [ "x"; "y" ]) (D.of_ints [ 1; 2; 3 ]) in
  checki "product" 6 (D.size p);
  checki "arity" 2 (D.arity p);
  let proj = D.project [ 0 ] p in
  checki "project" 2 (D.size proj)

let test_dataset_ops () =
  let a = D.of_ints [ 1; 2; 3 ] and b = D.of_ints [ 3; 4 ] in
  checki "union" 4 (D.size (D.union a b));
  checki "inter" 1 (D.size (D.inter a b));
  checki "diff" 2 (D.size (D.diff a b));
  checkb "arity mismatch" true
    (try
       ignore (D.union a (D.product a a));
       false
     with Invalid_argument _ -> true)

(* A small assignment problem through the modeling layer. *)
let test_model_assignment () =
  let model = M.create () in
  let tasks = D.of_strings [ "t1"; "t2" ] in
  let workers = D.of_strings [ "w1"; "w2" ] in
  let idx = D.product tasks workers in
  M.declare_binary_family model "X" ~index:idx;
  (* each task to exactly one worker and vice versa *)
  D.iter
    (fun t ->
      M.add_eq model ~name:"task"
        (M.sum_over workers (fun w -> M.v "X" (t @ w)))
        (M.const 1.))
    tasks;
  D.iter
    (fun w ->
      M.add_eq model ~name:"worker"
        (M.sum_over tasks (fun t -> M.v "X" (t @ w)))
        (M.const 1.))
    workers;
  (* costs: t1/w1 = 5, t1/w2 = 1, t2/w1 = 2, t2/w2 = 9 *)
  M.add_to_objective model (M.v "X" ~coef:5. [ D.S "t1"; D.S "w1" ]);
  M.add_to_objective model (M.v "X" ~coef:1. [ D.S "t1"; D.S "w2" ]);
  M.add_to_objective model (M.v "X" ~coef:2. [ D.S "t2"; D.S "w1" ]);
  M.add_to_objective model (M.v "X" ~coef:9. [ D.S "t2"; D.S "w2" ]);
  let inst = M.instantiate model in
  let r = Lp.Mip.solve inst.M.problem in
  checkb "optimal" true (r.Lp.Mip.status = Lp.Mip.Optimal);
  Alcotest.(check (float 1e-6)) "objective" 3. r.Lp.Mip.objective;
  checkb "t1->w2" true
    (M.is_one inst r.Lp.Mip.solution "X" [ D.S "t1"; D.S "w2" ]);
  checkb "t2->w1" true
    (M.is_one inst r.Lp.Mip.solution "X" [ D.S "t2"; D.S "w1" ])

let test_model_strictness () =
  let model = M.create () in
  M.declare_binary_family model "Y" ~index:(D.of_ints [ 1; 2 ]);
  M.add_eq model ~name:"bad" (M.v "Y" [ D.I 7 ]) (M.const 1.);
  checkb "out-of-set reference rejected" true
    (try
       ignore (M.instantiate model);
       false
     with Support.Diag.Compile_error _ -> true)

let test_unreferenced_default () =
  let model = M.create () in
  M.declare_binary_family model "Z" ~index:(D.of_ints [ 1; 2; 3 ]);
  M.add_eq model ~name:"only_one" (M.v "Z" [ D.I 1 ]) (M.const 1.);
  let inst = M.instantiate model in
  let r = Lp.Mip.solve inst.M.problem in
  checkb "optimal" true (r.Lp.Mip.status = Lp.Mip.Optimal);
  (* Z[2] was never referenced: reported as 0 *)
  Alcotest.(check (float 0.)) "default zero" 0.
    (M.value inst r.Lp.Mip.solution "Z" [ D.I 2 ])

let suites =
  [
    ( "ampl",
      [
        Alcotest.test_case "dataset basics" `Quick test_dataset_basics;
        Alcotest.test_case "dataset ops" `Quick test_dataset_ops;
        Alcotest.test_case "assignment model" `Quick test_model_assignment;
        Alcotest.test_case "index strictness" `Quick test_model_strictness;
        Alcotest.test_case "unreferenced default" `Quick test_unreferenced_default;
      ] );
  ]
