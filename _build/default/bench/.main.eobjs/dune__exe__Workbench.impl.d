bench/workbench.ml: Cps Hashtbl Ixp Printf Regalloc Workloads
