bench/main.mli:
