bench/main.ml: Ampl Analyze Array Bechamel Benchmark Fmt Hashtbl Instance Ixp Lazy List Lp Measure Nova Regalloc Staged Sys Test Time Toolkit Workbench Workloads
