bin/novarun.mli:
