bin/novarun.ml: Arg Cmd Cmdliner Cps Fmt Format Fun Ixp List Regalloc String Support Term
