bin/novac.mli:
