bin/novac.ml: Ampl Arg Cmd Cmdliner Cps Fmt Fun Ixp Lp Nova Regalloc Support Term
