(* novarun: compile a Nova program and execute it on the simulated
   IXP1200 micro-engine.

     novarun FILE [--args 1,2] [--threads N] [--sram ADDR=V,...]
             [--sdram ADDR=V,...] [--trace]

   Prints the result words from the scratch result area, the cycle count,
   and (optionally) a full instruction trace. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* "addr=value" pairs, both accepting 0x prefixes *)
let poke_conv =
  let parse s =
    match String.split_on_char '=' s with
    | [ a; v ] -> (
        try Ok (int_of_string a, int_of_string v)
        with _ -> Error (`Msg ("bad poke: " ^ s)))
    | _ -> Error (`Msg ("bad poke: " ^ s))
  in
  let print ppf (a, v) = Format.fprintf ppf "%d=%d" a v in
  Arg.conv (parse, print)

let run_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Nova source file")
  in
  let entry_args =
    Arg.(value & opt (list ~sep:',' int) [] & info [ "args" ] ~doc:"main() arguments")
  in
  let sram =
    Arg.(value & opt (list ~sep:',' poke_conv) [] & info [ "sram" ] ~doc:"SRAM byte-addr=value pokes")
  in
  let sdram =
    Arg.(value & opt (list ~sep:',' poke_conv) [] & info [ "sdram" ] ~doc:"SDRAM byte-addr=value pokes")
  in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Trace every instruction") in
  let allocator =
    Arg.(
      value
      & opt (enum [ ("ilp", `Ilp); ("baseline", `Baseline) ]) `Ilp
      & info [ "allocator"; "a" ] ~doc:"Register allocator")
  in
  let run file entry_args sram sdram trace allocator =
    try
      let source = read_file file in
      let options =
        {
          Regalloc.Driver.default_options with
          entry_args;
          allocator =
            (match allocator with
            | `Ilp -> Regalloc.Driver.Ilp_allocator
            | `Baseline -> Regalloc.Driver.Baseline_allocator);
        }
      in
      let compiled = Regalloc.Driver.compile ~options ~file source in
      let sim =
        Ixp.Simulator.create ~trace compiled.Regalloc.Driver.physical
      in
      let mem = Ixp.Simulator.shared_memory sim in
      List.iter (fun (a, v) -> Ixp.Memory.write mem Ixp.Insn.Sram a [| v |]) sram;
      let sd = Ixp.Simulator.sdram_of_thread sim ~thread:0 in
      List.iter (fun (a, v) -> Ixp.Memory.write sd Ixp.Insn.Sdram a [| v; 0 |]) sdram;
      let cycles = Ixp.Simulator.run_single sim in
      let base = Cps.Isel.result_addr_bytes Ixp.Memory.default_config / 4 in
      Fmt.pr "cycles: %d (%.2f us at 233 MHz)@." cycles
        (float_of_int cycles /. 233.);
      Fmt.pr "results:";
      for i = 0 to 3 do
        Fmt.pr " 0x%08X" (Ixp.Memory.peek mem Ixp.Insn.Scratch (base + i))
      done;
      Fmt.pr "@."
    with
    | Support.Diag.Compile_error d ->
        Fmt.epr "%a@." Support.Diag.pp d;
        exit 1
    | Regalloc.Driver.Allocation_failed msg ->
        Fmt.epr "allocation failed: %s@." msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "novarun" ~doc:"Compile and simulate a Nova program")
    Term.(const run $ file $ entry_args $ sram $ sdram $ trace $ allocator)

let () = exit (Cmd.eval run_cmd)
