(* novarun: compile a Nova program and execute it on the simulated
   IXP1200.

   Two modes:

   - single-run (default): one micro-engine, one thread, one invocation
     of main(); prints the result words from the scratch result area and
     the cycle count.

       novarun FILE [--args 1,2] [--sram ADDR=V,...] [--sdram ADDR=V,...]
               [--trace]

   - chip mode (--engines N): the full chip model -- N engines x
     --threads hardware contexts behind the shared memory bus, driven by
     the synthetic packet generator at a target offered load; prints the
     line-rate throughput report (achieved Mpps / Mbit/s, drops,
     per-engine utilization, latency percentiles).

       novarun FILE --engines 6 --threads 4 --profile fixed:64 \
               --offered-load 1.5 --packets 1000 --seed 7 *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* "addr=value" pairs, both accepting 0x prefixes *)
let poke_conv =
  let parse s =
    match String.split_on_char '=' s with
    | [ a; v ] -> (
        try Ok (int_of_string a, int_of_string v)
        with _ -> Error (`Msg ("bad poke: " ^ s)))
    | _ -> Error (`Msg ("bad poke: " ^ s))
  in
  let print ppf (a, v) = Format.fprintf ppf "%d=%d" a v in
  Arg.conv (parse, print)

let profile_conv =
  let parse s =
    match Ixp.Pktgen.profile_of_string s with
    | Ok p -> Ok p
    | Error msg -> Error (`Msg msg)
  in
  let print ppf p = Format.pp_print_string ppf (Ixp.Pktgen.profile_to_string p) in
  Arg.conv (parse, print)

let run_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Nova source file")
  in
  let entry_args =
    Arg.(value & opt (list ~sep:',' int) [] & info [ "args" ] ~doc:"main() arguments")
  in
  let sram =
    Arg.(value & opt (list ~sep:',' poke_conv) [] & info [ "sram" ] ~doc:"SRAM byte-addr=value pokes")
  in
  let sdram =
    Arg.(value & opt (list ~sep:',' poke_conv) [] & info [ "sdram" ] ~doc:"SDRAM byte-addr=value pokes")
  in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Trace every instruction") in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Record timed spans for every compile stage and (in chip mode) \
             per-engine context-occupancy spans, and write Chrome \
             trace-event JSON to $(docv)")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Dump the process-wide metrics registry (solver counters, bus \
             stall totals) to stderr at exit")
  in
  let allocator =
    Arg.(
      value
      & opt (enum [ ("ilp", `Ilp); ("baseline", `Baseline) ]) `Ilp
      & info [ "allocator"; "a" ] ~doc:"Register allocator")
  in
  let engines =
    Arg.(
      value & opt int 0
      & info [ "engines" ]
          ~doc:
            "Run on the chip model with this many micro-engines (0 = \
             single-run mode)")
  in
  let threads =
    Arg.(
      value & opt int 4
      & info [ "threads" ] ~doc:"Hardware contexts per engine (chip mode)")
  in
  let cluster =
    Arg.(
      value & opt int 0
      & info [ "cluster" ]
          ~doc:
            "Run a multi-chip cluster with this many chips behind the load \
             balancer (0 = single chip); implies chip mode")
  in
  let balancer_conv =
    let parse s =
      match Cluster.balancer_of_string s with
      | Ok b -> Ok b
      | Error msg -> Error (`Msg msg)
    in
    let print ppf b =
      Format.pp_print_string ppf (Cluster.balancer_to_string b)
    in
    Arg.conv (parse, print)
  in
  let balancer =
    Arg.(
      value
      & opt balancer_conv Cluster.Flow_hash
      & info [ "balancer" ]
          ~doc:"Cluster load balancer: hash (5-tuple flow affinity) or rr")
  in
  let drop_budget =
    Arg.(
      value & opt int 0
      & info [ "drop-budget" ]
          ~doc:
            "Balancer drops tolerated per chip before it is marked unhealthy \
             and steered around (0 = no budget)")
  in
  let profile =
    Arg.(
      value
      & opt profile_conv (Ixp.Pktgen.Fixed 64)
      & info [ "profile" ]
          ~doc:
            "Traffic profile: fixed:BYTES, imix, burst:BYTES:LEN, \
             flows:USERS:ALPHA_PCT:BYTES (Zipf users), elephants, flood \
             (SYN flood), flash:RAMP (flash crowd), or imix-path \
             (pathological IMIX)")
  in
  let offered_load =
    Arg.(
      value & opt float 1.0
      & info [ "offered-load" ]
          ~doc:"Offered load in Mpps; 0 or negative = saturation")
  in
  let packets =
    Arg.(
      value & opt int 256
      & info [ "packets" ] ~doc:"Packets to generate (chip mode)")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Packet-generator seed")
  in
  let ports =
    Arg.(value & opt int 1 & info [ "ports" ] ~doc:"Input ports (chip mode)")
  in
  let rx_capacity =
    Arg.(
      value & opt int 32
      & info [ "rx-capacity" ] ~doc:"Receive-ring capacity per port (packets)")
  in
  let no_contention =
    Arg.(
      value & flag
      & info [ "no-contention" ]
          ~doc:"Disable the shared memory-bus arbiter (unloaded latencies)")
  in
  let time_limit =
    Arg.(
      value & opt float 300.
      & info
          [ "time-limit"; "solver-time-limit" ]
          ~doc:"Branch&bound wall-clock budget in seconds")
  in
  let node_limit =
    Arg.(
      value & opt int 500_000
      & info [ "solver-node-limit" ] ~doc:"Branch&bound node budget")
  in
  let rel_gap =
    Arg.(
      value & opt float 1e-4
      & info [ "solver-rel-gap" ]
          ~doc:
            "Branch&bound relative optimality gap: stop once the incumbent \
             is proven within this fraction of the optimum")
  in
  let solver_domains =
    Arg.(
      value & opt int 1
      & info [ "solver-domains" ]
          ~doc:
            "Worker domains for parallel branch&bound (1 = the classic \
             sequential search)")
  in
  let solver_deterministic =
    Arg.(
      value & flag
      & info [ "solver-deterministic" ]
          ~doc:
            "With --solver-domains >= 2, distribute nodes on a fixed \
             schedule so node counts are reproducible run to run")
  in
  let run file entry_args sram sdram trace trace_out metrics allocator engines
      threads cluster balancer drop_budget profile offered_load packets seed
      ports rx_capacity no_contention time_limit node_limit rel_gap
      solver_domains solver_deterministic =
    try
      if trace_out <> None then Support.Trace.enable ();
      let finally () =
        (match trace_out with
        | Some path ->
            Support.Trace.disable ();
            Support.Trace.write path;
            Fmt.epr "wrote trace (%d events) to %s@."
              (Support.Trace.num_events ()) path
        | None -> ());
        if metrics then Fmt.epr "%s@." (Support.Metrics.dump ())
      in
      Fun.protect ~finally @@ fun () ->
      let source = read_file file in
      let options =
        {
          Regalloc.Driver.default_options with
          entry_args;
          time_limit;
          node_limit;
          rel_gap;
          solver_domains;
          solver_deterministic;
          allocator =
            (match allocator with
            | `Ilp -> Regalloc.Driver.Ilp_allocator
            | `Baseline -> Regalloc.Driver.Baseline_allocator);
        }
      in
      let compiled = Regalloc.Driver.compile ~options ~file source in
      (match compiled.Regalloc.Driver.stats.Regalloc.Driver.solver_outcome with
      | Regalloc.Driver.Outcome_incumbent | Regalloc.Driver.Outcome_fallback ->
          Fmt.epr "solver budget hit: emitted %s@."
            (Regalloc.Driver.solver_outcome_to_string
               compiled.Regalloc.Driver.stats.Regalloc.Driver.solver_outcome)
      | _ -> ());
      (match compiled.Regalloc.Driver.stats.Regalloc.Driver.mip with
      | Some m ->
          Fmt.epr
            "solver: root %.2fs, total %.2fs, %d nodes, %d pivots, %d cuts, \
             warm_start=%s incumbent_source=%s@."
            m.Lp.Mip.root_time m.Lp.Mip.total_time m.Lp.Mip.nodes
            m.Lp.Mip.simplex_iterations m.Lp.Mip.cuts_added
            (if m.Lp.Mip.warm_start_used then "yes" else "no")
            m.Lp.Mip.incumbent_source
      | None -> ());
      if cluster > 0 then begin
        (* cluster mode: N chips behind the load balancer *)
        let chip_config =
          {
            Ixp.Chip.default_config with
            Ixp.Chip.engines = (if engines > 0 then engines else 6);
            threads;
            contention = not no_contention;
            rx_capacity;
            trace;
          }
        in
        let config =
          {
            Cluster.default_config with
            Cluster.chips = cluster;
            balancer;
            chip_config;
            drop_budget;
          }
        in
        let cl = Cluster.create ~config compiled.Regalloc.Driver.physical in
        Cluster.iter_chips
          (fun chip ->
            let mem = Ixp.Chip.shared_memory chip in
            List.iter
              (fun (a, v) -> Ixp.Memory.write mem Ixp.Insn.Sram a [| v |])
              sram)
          cl;
        let gen =
          Ixp.Pktgen.create
            {
              Ixp.Pktgen.default_config with
              Ixp.Pktgen.profile;
              offered_mpps = offered_load;
              seed;
              count = packets;
              ports;
            }
        in
        let report = Cluster.run cl gen in
        Fmt.pr
          "cluster: %d chips x %d engines x %d threads, balancer %s, profile \
           %s, offered %.3f Mpps, seed %d@."
          cluster chip_config.Ixp.Chip.engines threads
          (Cluster.balancer_to_string balancer)
          (Ixp.Pktgen.profile_to_string profile)
          offered_load seed;
        Fmt.pr "%a" Cluster.pp_report report
      end
      else if engines > 0 then begin
        (* chip mode: line-rate run against the packet generator *)
        let config =
          {
            Ixp.Chip.default_config with
            Ixp.Chip.engines;
            threads;
            contention = not no_contention;
            rx_capacity;
            trace;
          }
        in
        let chip = Ixp.Chip.create ~config compiled.Regalloc.Driver.physical in
        let mem = Ixp.Chip.shared_memory chip in
        List.iter (fun (a, v) -> Ixp.Memory.write mem Ixp.Insn.Sram a [| v |]) sram;
        for e = 0 to engines - 1 do
          for t = 0 to threads - 1 do
            let sd = Ixp.Simulator.sdram_of_thread (Ixp.Chip.engine chip e) ~thread:t in
            List.iter
              (fun (a, v) -> Ixp.Memory.write sd Ixp.Insn.Sdram a [| v; 0 |])
              sdram
          done
        done;
        let gen =
          Ixp.Pktgen.create
            {
              Ixp.Pktgen.default_config with
              Ixp.Pktgen.profile;
              offered_mpps = offered_load;
              seed;
              count = packets;
              ports;
            }
        in
        let report = Ixp.Chip.run chip gen in
        Fmt.pr "chip: %d engines x %d threads, profile %s, offered %.3f Mpps, seed %d@."
          engines threads
          (Ixp.Pktgen.profile_to_string profile)
          offered_load seed;
        Fmt.pr "%a" Ixp.Chip.pp_report report
      end
      else begin
        let sim =
          Ixp.Simulator.create ~trace compiled.Regalloc.Driver.physical
        in
        let mem = Ixp.Simulator.shared_memory sim in
        List.iter (fun (a, v) -> Ixp.Memory.write mem Ixp.Insn.Sram a [| v |]) sram;
        let sd = Ixp.Simulator.sdram_of_thread sim ~thread:0 in
        List.iter (fun (a, v) -> Ixp.Memory.write sd Ixp.Insn.Sdram a [| v; 0 |]) sdram;
        let cycles = Ixp.Simulator.run_single sim in
        let base = Cps.Isel.result_addr_bytes Ixp.Memory.default_config / 4 in
        Fmt.pr "cycles: %d (%.2f us at 233 MHz)@." cycles
          (float_of_int cycles /. 233.);
        Fmt.pr "results:";
        for i = 0 to 3 do
          Fmt.pr " 0x%08X" (Ixp.Memory.peek mem Ixp.Insn.Scratch (base + i))
        done;
        Fmt.pr "@."
      end
    with
    | Support.Diag.Compile_error d ->
        Fmt.epr "%a@." Support.Diag.pp d;
        exit 1
    | Regalloc.Driver.Allocation_failed msg ->
        Fmt.epr "allocation failed: %s@." msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "novarun" ~doc:"Compile and simulate a Nova program")
    Term.(
      const run $ file $ entry_args $ sram $ sdram $ trace $ trace_out
      $ metrics $ allocator $ engines $ threads $ cluster $ balancer
      $ drop_budget $ profile $ offered_load $ packets $ seed $ ports
      $ rx_capacity $ no_contention $ time_limit $ node_limit $ rel_gap
      $ solver_domains $ solver_deterministic)

let () = exit (Cmd.eval run_cmd)
