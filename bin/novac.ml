(* novac: the Nova compiler command-line driver.

     novac compile FILE [--allocator ilp|baseline] [--dump PHASE] [--lint] ...
     novac lint (FILE | --workload aes|kasumi|nat|lpm|firewall|csum|qos) [--allow REGION] ...
     novac stats FILE
     novac model FILE [-o out.lp]

   See README.md for the language reference. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let entry_args_conv =
  Arg.list ~sep:',' Arg.int

let handle_errors f =
  try f () with
  | Support.Diag.Compile_error d ->
      Fmt.epr "%a@." Support.Diag.pp d;
      exit 1
  | Regalloc.Driver.Allocation_failed msg ->
      Fmt.epr "allocation failed: %s@." msg;
      exit 2

(* ---------------- compile ---------------- *)

let compile_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Nova source file")
  in
  let allocator =
    Arg.(
      value
      & opt (enum [ ("ilp", `Ilp); ("baseline", `Baseline) ]) `Ilp
      & info [ "allocator"; "a" ] ~doc:"Register allocator: ilp or baseline")
  in
  let dump =
    Arg.(
      value
      & opt
          (some
             (enum
                [ ("cps", `Cps); ("virtual", `Virtual); ("asm", `Asm); ("stats", `Stats) ]))
          (Some `Asm)
      & info [ "dump"; "d" ] ~doc:"What to print: cps, virtual, asm or stats")
  in
  let entry_args =
    Arg.(
      value & opt entry_args_conv []
      & info [ "args" ] ~doc:"Comma-separated integer arguments for main")
  in
  let time_limit =
    Arg.(
      value
      & opt float 300.
      & info
          [ "time-limit"; "solver-time-limit" ]
          ~doc:"Branch&bound wall-clock budget in seconds")
  in
  let node_limit =
    Arg.(
      value
      & opt int 500_000
      & info [ "solver-node-limit" ]
          ~doc:
            "Branch&bound node budget (deterministic); when hit, the best \
             incumbent is emitted, or the baseline allocation if no \
             incumbent was found")
  in
  let rel_gap =
    Arg.(
      value
      & opt float 1e-4
      & info [ "solver-rel-gap" ]
          ~doc:
            "Branch&bound relative optimality gap: stop once the incumbent \
             is proven within this fraction of the optimum")
  in
  let solver_domains =
    Arg.(
      value & opt int 1
      & info [ "solver-domains" ]
          ~doc:
            "Worker domains for parallel branch&bound (1 = the classic \
             sequential search)")
  in
  let solver_deterministic =
    Arg.(
      value & flag
      & info [ "solver-deterministic" ]
          ~doc:
            "With --solver-domains >= 2, distribute nodes on a fixed \
             schedule so node counts are reproducible run to run (slightly \
             less pruning)")
  in
  let no_validate =
    Arg.(
      value & flag
      & info [ "no-validate" ]
          ~doc:"Skip the post-allocation assignment and machine-legality checks")
  in
  let verify_each =
    Arg.(
      value & flag
      & info [ "verify-each" ]
          ~doc:
            "Re-verify IR invariants (scoping, SSA, SSU, aggregate widths) and \
             diff interpreter semantics after every middle-end pass (default)")
  in
  let no_verify_each =
    Arg.(
      value & flag
      & info [ "no-verify-each" ] ~doc:"Disable the per-pass IR verification")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a timed span for every pipeline stage (front end, each \
             CPS pass, model generation, presolve, root LP, branch&bound, \
             emit) and write Chrome trace-event JSON to $(docv); open it in \
             Perfetto or chrome://tracing")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Dump the process-wide metrics registry (solver node counts, LU \
             refactorizations, cuts, model sizes) to stderr after \
             compilation")
  in
  let lint_flag =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:
            "After compiling, run the static-analysis lint (cross-context \
             races, machine-level validation, dead stores) and fail on \
             errors; same as `novac lint` but without workload whitelists")
  in
  let run file allocator dump entry_args time_limit node_limit rel_gap
      solver_domains solver_deterministic no_validate verify_each
      no_verify_each trace_out metrics lint_flag =
    handle_errors (fun () ->
        let source = read_file file in
        if trace_out <> None then Support.Trace.enable ();
        (* the trace is written even when compilation dies: the partial
           timeline is what identifies the stage that failed *)
        let finally () =
          (match trace_out with
          | Some path ->
              Support.Trace.disable ();
              Support.Trace.write path;
              Fmt.epr "; wrote trace (%d events) to %s@."
                (Support.Trace.num_events ()) path
          | None -> ());
          if metrics then Fmt.epr "%s@." (Support.Metrics.dump ())
        in
        Fun.protect ~finally @@ fun () ->
        let options =
          {
            Regalloc.Driver.default_options with
            allocator =
              (match allocator with
              | `Ilp -> Regalloc.Driver.Ilp_allocator
              | `Baseline -> Regalloc.Driver.Baseline_allocator);
            entry_args;
            time_limit;
            node_limit;
            rel_gap;
            solver_domains;
            solver_deterministic;
            validate = not no_validate;
            verify_each = verify_each || not no_verify_each;
          }
        in
        let compiled = Regalloc.Driver.compile ~options ~file source in
        let stats = compiled.Regalloc.Driver.stats in
        (match dump with
        | Some `Cps ->
            print_endline (Cps.Ir.to_string compiled.Regalloc.Driver.cps_term)
        | Some `Virtual ->
            print_endline
              (Ixp.Flowgraph.to_string Support.Ident.pp
                 compiled.Regalloc.Driver.virtual_graph)
        | Some `Asm ->
            print_endline
              (Ixp.Asm.program_to_string compiled.Regalloc.Driver.physical)
        | Some `Stats | None -> ());
        Fmt.epr "; %d virtual insns; %d moves, %d spills@."
          stats.Regalloc.Driver.virtual_insns
          stats.Regalloc.Driver.moves_inserted
          stats.Regalloc.Driver.spills_inserted;
        (match stats.Regalloc.Driver.mip with
        | Some m ->
            Fmt.epr
              "; ILP %dx%d -> %dx%d, root %.2fs, total %.2fs, %d nodes, %d \
               pivots, %d cuts/%d rounds, %d heuristic incumbents, \
               warm_start=%s incumbent_source=%s@."
              m.Lp.Mip.vars_before m.Lp.Mip.rows_before m.Lp.Mip.vars_after
              m.Lp.Mip.rows_after m.Lp.Mip.root_time m.Lp.Mip.total_time
              m.Lp.Mip.nodes m.Lp.Mip.simplex_iterations m.Lp.Mip.cuts_added
              m.Lp.Mip.cut_rounds m.Lp.Mip.heuristic_incumbents
              (if m.Lp.Mip.warm_start_used then "yes" else "no")
              m.Lp.Mip.incumbent_source
        | None -> ());
        (match stats.Regalloc.Driver.solver_outcome with
        | Regalloc.Driver.Outcome_incumbent | Regalloc.Driver.Outcome_fallback
          ->
            Fmt.epr "; solver budget hit (%.0fs / %d nodes): emitted %s@."
              time_limit node_limit
              (Regalloc.Driver.solver_outcome_to_string
                 stats.Regalloc.Driver.solver_outcome)
        | Regalloc.Driver.Outcome_optimal | Regalloc.Driver.Outcome_heuristic
          ->
            ());
        if lint_flag then begin
          let report = Regalloc.Driver.lint compiled in
          Fmt.epr "%a" Analysis.Lint.pp_report report;
          if Analysis.Lint.errors report <> [] then exit 1
        end)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a Nova program to IXP assembly")
    Term.(
      const run $ file $ allocator $ dump $ entry_args $ time_limit
      $ node_limit $ rel_gap $ solver_domains $ solver_deterministic
      $ no_validate $ verify_each $ no_verify_each $ trace_out $ metrics
      $ lint_flag)

(* ---------------- serve ---------------- *)

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt string Service.Daemon.default_socket
      & info [ "socket"; "s" ] ~docv:"PATH"
          ~doc:"Unix domain socket to listen on")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Artifact store directory (default: _artifacts/cache); holds \
             the persistent solve artifacts that survive daemon restarts")
  in
  let solver_domains =
    Arg.(
      value & opt int 1
      & info [ "solver-domains" ]
          ~doc:"Worker domains for parallel branch&bound, for every job")
  in
  let solver_deterministic =
    Arg.(
      value & flag
      & info [ "solver-deterministic" ]
          ~doc:"Fixed node-distribution schedule for every job")
  in
  let time_limit =
    Arg.(
      value & opt float 300.
      & info [ "time-limit" ] ~doc:"Default branch&bound budget per job")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Dump the metrics registry to stderr on shutdown")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No per-job log lines")
  in
  let run socket cache_dir solver_domains solver_deterministic time_limit
      metrics quiet =
    handle_errors (fun () ->
        let config =
          {
            Service.Daemon.socket_path = socket;
            cache_dir;
            base_options =
              {
                Regalloc.Driver.default_options with
                solver_domains;
                solver_deterministic;
                time_limit;
              };
            verbose = not quiet;
          }
        in
        Fmt.epr "novac serve: listening on %s (ctrl-c or {\"op\":\"shutdown\"} to stop)@." socket;
        Service.Daemon.run config;
        if metrics then Fmt.epr "%s@." (Support.Metrics.dump ()))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the incremental compile service: a Unix-domain-socket daemon \
          accepting batched compile jobs (newline-delimited JSON), with an \
          in-memory hot cache over the stage-cached driver and persistent \
          solve artifacts for warm-started rebuilds")
    Term.(
      const run $ socket $ cache_dir $ solver_domains $ solver_deterministic
      $ time_limit $ metrics $ quiet)

(* ---------------- lint ---------------- *)

(* REGION syntax: SPACE:ADDR:WORDS[:NAME], e.g. sram:0x4000:256:my-table.
   ADDR is a byte address; 0x-prefixed literals are accepted. *)
let region_conv =
  let parse s =
    let bad () =
      Error (`Msg (Printf.sprintf "bad region %S (want SPACE:ADDR:WORDS[:NAME], SPACE = sram|scratch)" s))
    in
    match String.split_on_char ':' s with
    | space :: addr :: words :: rest -> (
        let name = match rest with [] -> s | [ n ] -> n | _ -> "" in
        if name = "" then bad ()
        else
          match
            ( (match space with
              | "sram" -> Some Ixp.Insn.Sram
              | "scratch" -> Some Ixp.Insn.Scratch
              | _ -> None),
              int_of_string_opt addr,
              int_of_string_opt words )
          with
          | Some space, Some base, Some words when words > 0 ->
              Ok (name, space, base, words)
          | _ -> bad ())
    | _ -> bad ()
  in
  let print ppf (name, space, base, words) =
    Fmt.pf ppf "%s:0x%x:%d:%s" (Ixp.Insn.space_to_string space) base words name
  in
  Arg.conv (parse, print)

let lint_cmd =
  let file =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Nova source file (or use --workload)")
  in
  let workload =
    Arg.(
      value
      & opt
          (some
             (enum
                [
                  ("aes", `Aes); ("kasumi", `Kasumi); ("nat", `Nat);
                  ("lpm", `Lpm); ("firewall", `Firewall); ("csum", `Csum);
                  ("qos", `Qos);
                ]))
          None
      & info [ "workload"; "w" ]
          ~doc:
            "Lint a built-in paper workload with its table/result whitelist \
             instead of a FILE")
  in
  let allocator =
    Arg.(
      value
      & opt (enum [ ("ilp", `Ilp); ("baseline", `Baseline) ]) `Baseline
      & info [ "allocator"; "a" ]
          ~doc:
            "Register allocator to lint the output of (default: baseline, \
             which is fast; the CI lint job also covers ilp)")
  in
  let allow =
    Arg.(
      value & opt_all region_conv []
      & info [ "allow" ] ~docv:"REGION"
          ~doc:
            "Whitelist a shared-write region (racy writes accepted by \
             design): SPACE:ADDR:WORDS[:NAME]")
  in
  let allow_ro =
    Arg.(
      value & opt_all region_conv []
      & info [ "allow-ro" ] ~docv:"REGION"
          ~doc:
            "Declare a read-only region (initialized by the control \
             processor; engine writes into it are errors): \
             SPACE:ADDR:WORDS[:NAME]")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Exit nonzero on warnings too, not just errors")
  in
  let run file workload allocator allow allow_ro strict =
    handle_errors (fun () ->
        let name, source, wl_regions =
          match (workload, file) with
          | Some `Aes, None ->
              ("<aes>", Workloads.Aes.source, Workloads.Aes.lint_regions)
          | Some `Kasumi, None ->
              ("<kasumi>", Workloads.Kasumi.source, Workloads.Kasumi.lint_regions)
          | Some `Nat, None ->
              ("<nat>", Workloads.Nat.source, Workloads.Nat.lint_regions)
          | Some `Lpm, None ->
              ("<lpm>", Workloads.Lpm.source, Workloads.Lpm.lint_regions)
          | Some `Firewall, None ->
              ( "<firewall>",
                Workloads.Firewall.source,
                Workloads.Firewall.lint_regions )
          | Some `Csum, None ->
              ("<csum>", Workloads.Csum.source, Workloads.Csum.lint_regions)
          | Some `Qos, None ->
              ("<qos>", Workloads.Qos.source, Workloads.Qos.lint_regions)
          | None, Some f -> (f, read_file f, [])
          | Some _, Some _ ->
              Fmt.epr "lint: give either FILE or --workload, not both@.";
              exit 2
          | None, None ->
              Fmt.epr "lint: nothing to lint; give FILE or --workload@.";
              exit 2
        in
        let mk policy (rname, space, base, words) =
          Analysis.Race.region ~name:rname ~space ~base ~words policy
        in
        let regions =
          wl_regions
          @ List.map (mk Analysis.Race.Shared_write) allow
          @ List.map (mk Analysis.Race.Read_only) allow_ro
        in
        let options =
          {
            Regalloc.Driver.default_options with
            allocator =
              (match allocator with
              | `Ilp -> Regalloc.Driver.Ilp_allocator
              | `Baseline -> Regalloc.Driver.Baseline_allocator);
          }
        in
        let compiled = Regalloc.Driver.compile ~options ~file:name source in
        let report = Regalloc.Driver.lint ~regions compiled in
        Fmt.pr "%a" Analysis.Lint.pp_report report;
        let errors = Analysis.Lint.errors report in
        let warnings = Analysis.Lint.warnings report in
        if errors <> [] || (strict && warnings <> []) then exit 1)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static analysis of the compiled program: cross-context race \
          detection, independent machine-level validation, dead-store and \
          unreachable-code lint")
    Term.(
      const run $ file $ workload $ allocator $ allow $ allow_ro $ strict)

(* ---------------- fuzz ---------------- *)

let fuzz_cmd =
  let seed =
    Arg.(value & opt int 0
         & info [ "seed" ] ~docv:"N"
             ~doc:"Campaign seed; program i is generated from (seed, i)")
  in
  let count =
    Arg.(value & opt int 100
         & info [ "count" ] ~docv:"K" ~doc:"Number of programs to generate")
  in
  let max_size =
    Arg.(value & opt int 20
         & info [ "max-size" ] ~docv:"S"
             ~doc:"Size budget per program (statements; expression fuel is 5S)")
  in
  let minimize =
    Arg.(value & flag
         & info [ "minimize" ]
             ~doc:"Shrink counterexamples before writing them (greedy \
                   first-fit over type-preserving AST rewrites)")
  in
  let node_limit =
    Arg.(value & opt int 400
         & info [ "node-limit" ] ~docv:"N"
             ~doc:"Branch-and-bound node budget for the ILP legs")
  in
  let no_ilp =
    Arg.(value & flag
         & info [ "no-ilp" ]
             ~doc:"Skip the ILP-vs-baseline and warm-vs-cold stages (cheap \
                   smoke mode)")
  in
  let out_dir =
    Arg.(value & opt string "fuzz-corpus"
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Directory for shrunk counterexample corpus files")
  in
  let replay =
    Arg.(value & opt_all file []
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Replay corpus file(s) through the full oracle instead of \
                   generating; exit 1 if any fails")
  in
  let run seed count max_size minimize node_limit no_ilp out_dir replay =
    handle_errors (fun () ->
        let ilp = not no_ilp in
        match replay with
        | _ :: _ ->
            let failed =
              List.filter
                (fun path ->
                  match Fuzz.Campaign.replay_file ~node_limit ~ilp path with
                  | Ok () ->
                      Fmt.pr "%s: ok@." path;
                      false
                  | Error f ->
                      Fmt.pr "%s: FAILED at stage %s: %s@." path
                        f.Fuzz.Oracle.stage f.Fuzz.Oracle.detail;
                      true)
                replay
            in
            if failed <> [] then exit 1
        | [] ->
            Fmt.pr
              "fuzzing: seed=%d count=%d max-size=%d %s node-limit=%d@."
              seed count max_size
              (if ilp then "(full oracle)" else "(front-end only)")
              node_limit;
            let summary =
              Fuzz.Campaign.run ~seed ~count ~max_size ~minimize ~node_limit
                ~ilp ~out_dir
                ~log:(fun m -> Fmt.pr "  %s@." m)
                ()
            in
            let nfail = List.length summary.Fuzz.Campaign.failures in
            Fmt.pr "ran %d programs: %d counterexample(s)@."
              summary.Fuzz.Campaign.ran nfail;
            List.iter
              (fun cx ->
                Fmt.pr "  index %d, stage %s: %s%a@."
                  cx.Fuzz.Campaign.cx_index
                  cx.Fuzz.Campaign.cx_failure.Fuzz.Oracle.stage
                  cx.Fuzz.Campaign.cx_failure.Fuzz.Oracle.detail
                  (fun ppf -> function
                    | Some p -> Fmt.pf ppf " (%s)" p
                    | None -> ())
                  cx.Fuzz.Campaign.cx_path)
              summary.Fuzz.Campaign.failures;
            if nfail > 0 then exit 1)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate seeded well-typed Nova programs and \
          check printer/parser agreement, interpreter-vs-simulator \
          execution, ILP-vs-baseline allocation and warm-vs-cold \
          compilation; shrunk counterexamples are written to a replayable \
          corpus")
    Term.(
      const run $ seed $ count $ max_size $ minimize $ node_limit $ no_ilp
      $ out_dir $ replay)

(* ---------------- stats ---------------- *)

let stats_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Nova source file")
  in
  let run file =
    handle_errors (fun () ->
        let source = read_file file in
        let prog = Nova.Parser.parse_string ~file source in
        let s = Nova.Stats.of_program ~source prog in
        Fmt.pr "%a@." Nova.Stats.pp s)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Static program statistics (paper Figure 5)")
    Term.(const run $ file)

(* ---------------- model ---------------- *)

let model_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Nova source file")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o" ] ~doc:"Write CPLEX LP format to this file")
  in
  let spill =
    Arg.(value & flag & info [ "spill" ] ~doc:"Include the scratch-memory spill machinery")
  in
  let run file out spill =
    handle_errors (fun () ->
        let source = read_file file in
        let front = Regalloc.Driver.front_end ~file source in
        let mg = Regalloc.Modelgen.build ~allow_spill:spill front.Regalloc.Driver.f_graph in
        let ilp = Regalloc.Ilp.build mg in
        let p = ilp.Regalloc.Ilp.instance.Ampl.Model.problem in
        let st = Lp.Problem.stats p in
        Fmt.pr "model: %d variables, %d constraints, %d nonzeros, %d objective terms@."
          st.Lp.Problem.n_vars st.Lp.Problem.n_rows st.Lp.Problem.n_nonzeros
          st.Lp.Problem.n_obj_terms;
        Fmt.pr "%a" Ampl.Model.pp_summary ilp.Regalloc.Ilp.model;
        match out with
        | Some path ->
            Lp.Lp_format.write_file path p;
            Fmt.pr "wrote %s@." path
        | None -> ())
  in
  Cmd.v
    (Cmd.info "model" ~doc:"Generate and describe the ILP model without solving")
    Term.(const run $ file $ out $ spill)

let () =
  let doc = "compiler for the Nova network-processor language" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "novac" ~doc)
          [ compile_cmd; serve_cmd; lint_cmd; fuzz_cmd; stats_cmd; model_cmd ]))
